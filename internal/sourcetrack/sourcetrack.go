// Package sourcetrack is the per-source attribution engine: it runs
// one stateless CUSUM instance per source key, so an alarm does not
// just say "a flood left this stub network" but *which* source prefix
// it left from. The paper's agent (internal/core) is the aggregate
// special case; this package banks many of its detectors behind a
// keyed demux, the standard construction for localizing change-points
// in aggregate traffic (Lévy-Leduc & Roueff 2009, see PAPERS.md).
//
// Keying: outgoing SYNs are keyed by their source address, incoming
// SYN/ACKs by their destination address — both resolve to the inside
// host that opened the connection, masked to a configurable prefix
// width (/32 per host, /24, /16, ...). A spoofing flooder therefore
// concentrates unanswered SYNs on its key(s) while legitimate keys
// keep their SYN-SYN/ACK balance.
//
// Memory is bounded: only the top-K SYN senders (Space-Saving heavy-
// hitter sketch, Metwally et al.) hold full CUSUM state. When a new
// key arrives at capacity the minimum-count state is recycled in
// place, so the tracker allocates O(K) detector states no matter how
// many distinct sources the stream carries; evictions are counted in
// TrackerStats, never dropped silently.
//
// Concurrency: keys hash (FNV-1a) onto lock-striped shards, so live
// ingestion scales across GOMAXPROCS. Replays wanting determinism use
// Shards=1 (the default): a single-shard single-goroutine run is
// bit-identical to running one core.Agent per key over a pre-filtered
// trace — the equivalence the tests pin.
package sourcetrack

import (
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cusum"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Defaults for the keyed engine. The per-key MinK floor is higher
// than the aggregate default (1): a /24 slice of a quiet site sees
// near-zero SYN/ACKs per period, and a floor of a few packets keeps
// one retransmitted SYN from registering as a full normalized unit.
const (
	DefaultKeyBits    = 24
	DefaultMaxSources = 1024
	DefaultKeyMinK    = 10
)

// Config parameterizes a Tracker. Zero fields take defaults.
type Config struct {
	// KeyBits is the prefix width sources are masked to: 32 tracks
	// individual hosts, 24/16 aggregate (default 24). IPv6 addresses
	// keep the same host-part width (e.g. /24 keying masks v6
	// addresses to /120).
	KeyBits int
	// MaxSources is K, the number of sources holding full CUSUM state
	// (default 1024). Everything beyond K competes via Space-Saving
	// admission.
	MaxSources int
	// Shards is the lock-stripe count (default 1). One shard is the
	// deterministic replay path; live feeds pass GOMAXPROCS. The
	// shard count is an execution detail like experiment Parallelism:
	// it may change across a resume.
	Shards int
	// Agent holds the per-key detector parameters (T0, Alpha, Offset,
	// Threshold, MinK, WarmupPeriods). A zero MinK defaults to
	// DefaultKeyMinK, not the aggregate agent's 1.
	Agent core.Config
}

// Normalized returns the configuration with defaults applied. Two
// configurations resume-match exactly when their normalized KeyBits,
// MaxSources and Agent agree (Shards is an execution detail).
func (c Config) Normalized() Config {
	if c.KeyBits == 0 {
		c.KeyBits = DefaultKeyBits
	}
	if c.MaxSources == 0 {
		c.MaxSources = DefaultMaxSources
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Agent.MinK == 0 {
		c.Agent.MinK = DefaultKeyMinK
	}
	c.Agent = c.Agent.Normalized()
	return c
}

// TrackerStats reports the tracker's volume and truncation counters —
// the "what did we drop" ledger that keeps bounded memory honest.
type TrackerStats struct {
	// SYNs and SYNACKs count keyed observations routed to a tracked
	// state.
	SYNs    uint64 `json:"syns"`
	SYNACKs uint64 `json:"synAcks"`
	// UntrackedSYNACKs counts SYN/ACKs whose key held no CUSUM state
	// (SYN/ACKs never admit a key; only SYN pressure does).
	UntrackedSYNACKs uint64 `json:"untrackedSynAcks"`
	// Unkeyed counts records with no usable address.
	Unkeyed uint64 `json:"unkeyed"`
	// Evicted counts CUSUM states recycled by Space-Saving admission.
	Evicted uint64 `json:"evicted"`
	// Tracked and Alarmed describe the current key population.
	Tracked int `json:"tracked"`
	Alarmed int `json:"alarmed"`
}

// SourceReport is one key's detection state, the /sources payload row.
type SourceReport struct {
	Key netip.Prefix `json:"key"`
	// Count is the Space-Saving SYN count estimate; CountErr bounds
	// its overestimation (0 for keys admitted before capacity).
	Count        uint64  `json:"synCount"`
	CountErr     uint64  `json:"synCountErr"`
	Periods      int     `json:"periods"`
	KBar         float64 `json:"kBar"`
	Y            float64 `json:"yn"`
	X            float64 `json:"x"`
	OutSYN       uint64  `json:"lastOutSYN"`
	InSYNACK     uint64  `json:"lastInSYNACK"`
	Alarmed      bool    `json:"alarmed"`
	AlarmPeriod  int     `json:"alarmPeriod,omitempty"`
	AlarmAtNanos int64   `json:"alarmAtNanos,omitempty"`
	AlarmY       float64 `json:"alarmY,omitempty"`
}

// keyState is one tracked source: the same scalars a core.Agent keeps
// (EWMA K̄, CUSUM statistic, period counters) plus the Space-Saving
// admission counters. It deliberately carries no report history — per
// key memory is O(1), so total memory is O(MaxSources).
type keyState struct {
	key netip.Prefix
	idx int // position in the shard's admission min-heap

	count uint64 // Space-Saving estimated SYN count
	errc  uint64 // overestimation bound inherited at admission

	kBar *cusum.EWMA
	det  *cusum.Detector

	periods  int
	outSYN   uint64
	inSYNACK uint64
	last     core.Report
	alarm    *core.Alarm
}

// endPeriod mirrors core.Agent.EndPeriod bit-exactly (EWMA update,
// MinK floor, warm-up gating, alarm latch) over this key's counters.
// It returns the period report and whether a new alarm latched.
func (st *keyState) endPeriod(end time.Duration, cfg *core.Config) (core.Report, bool) {
	k := st.kBar.Update(float64(st.inSYNACK))
	norm := k
	if norm < cfg.MinK {
		norm = cfg.MinK
	}
	x := (float64(st.outSYN) - float64(st.inSYNACK)) / norm

	r := core.Report{
		Index: st.periods, End: end,
		OutSYN: st.outSYN, InSYNACK: st.inSYNACK,
		K: k, X: x,
	}
	newAlarm := false
	if st.periods >= cfg.WarmupPeriods {
		alarmed := st.det.Observe(x)
		r.Y = st.det.Statistic()
		r.Alarmed = alarmed
		if alarmed && st.alarm == nil {
			st.alarm = &core.Alarm{Period: r.Index, At: end, Y: r.Y}
			newAlarm = true
		}
	}
	st.periods++
	st.outSYN, st.inSYNACK = 0, 0
	st.last = r
	return r, newAlarm
}

// reset recycles the state for a (possibly new) key. inherited is the
// Space-Saving count the key starts from (the evicted minimum; 0 when
// admitted below capacity). done is the tracker's completed-period
// clock: a key first seen now is indistinguishable from one that sat
// at zero counts since the stream began, and `done` zero-count
// periods prime K̄ to 0 (the first EWMA sample initializes directly)
// and leave the CUSUM statistic at 0 having consumed every
// post-warm-up period — so a late-admitted key is bit-identical to a
// core.Agent that replayed the key's records from the trace start.
func (st *keyState) reset(key netip.Prefix, inherited uint64, done, warmup int) {
	st.key = key
	st.count = inherited
	st.errc = inherited
	st.outSYN, st.inSYNACK = 0, 0
	st.last = core.Report{}
	st.alarm = nil
	st.periods = done
	// The zero state cannot fail validation.
	_ = st.kBar.Restore(0, done > 0)
	obs := done - warmup
	if obs < 0 {
		obs = 0
	}
	_ = st.det.Restore(0, false, uint64(obs), 0)
}

func (st *keyState) report() SourceReport {
	r := SourceReport{
		Key: st.key, Count: st.count, CountErr: st.errc,
		Periods: st.periods, KBar: st.kBar.Value(),
		Y: st.det.Statistic(), X: st.last.X,
		OutSYN: st.last.OutSYN, InSYNACK: st.last.InSYNACK,
		Alarmed: st.alarm != nil,
	}
	if st.alarm != nil {
		r.AlarmPeriod = st.alarm.Period
		r.AlarmAtNanos = int64(st.alarm.At)
		r.AlarmY = st.alarm.Y
	}
	return r
}

// keyLess orders the admission heap: by Space-Saving count, with the
// key itself as tie-break so heap evolution is deterministic.
func keyLess(a, b *keyState) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	if c := a.key.Addr().Compare(b.key.Addr()); c != 0 {
		return c < 0
	}
	return a.key.Bits() < b.key.Bits()
}

// shard is one lock stripe: a key→state map plus the Space-Saving
// min-heap over the same states.
type shard struct {
	mu     sync.Mutex
	cap    int
	states map[netip.Prefix]*keyState
	heap   []*keyState

	syns, synAcks, untracked, evicted uint64
	alarmed                           int
}

func (s *shard) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx = i
	s.heap[j].idx = j
}

func (s *shard) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(s.heap[i], s.heap[parent]) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *shard) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(s.heap) && keyLess(s.heap[l], s.heap[min]) {
			min = l
		}
		if r < len(s.heap) && keyLess(s.heap[r], s.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// insert adds a restored state (resume path; may exceed cap when the
// shard count changed across the restart — admission then recycles
// in place without growing, so memory stays bounded by the snapshot).
func (s *shard) insert(st *keyState) {
	st.idx = len(s.heap)
	s.heap = append(s.heap, st)
	s.states[st.key] = st
	s.siftUp(st.idx)
}

// admit returns the state for a new key, allocating below capacity
// and recycling the minimum-count state (Space-Saving) at capacity.
// Callers hold s.mu.
func (s *shard) admit(key netip.Prefix, done int, cfg *Config) *keyState {
	if len(s.heap) < s.cap {
		// Parameters were validated at Tracker construction.
		kb, _ := cusum.NewEWMA(cfg.Agent.Alpha)
		dt, _ := cusum.New(cfg.Agent.Offset, cfg.Agent.Threshold)
		st := &keyState{kBar: kb, det: dt}
		st.reset(key, 0, done, cfg.Agent.WarmupPeriods)
		s.insert(st)
		return st
	}
	st := s.heap[0] // minimum count
	delete(s.states, st.key)
	if st.alarm != nil {
		s.alarmed--
	}
	s.evicted++
	// The new key inherits the evicted minimum as count and error
	// bound; count is unchanged so the heap property holds at the
	// root until the caller's increment sifts it down.
	st.reset(key, st.count, done, cfg.Agent.WarmupPeriods)
	s.states[key] = st
	return st
}

func (s *shard) observeSYN(key netip.Prefix, done int, cfg *Config) {
	s.mu.Lock()
	s.observeSYNLocked(key, done, cfg)
	s.mu.Unlock()
}

// observeSYNLocked is observeSYN under an already-held shard lock —
// the batch paths take the lock once per chunk instead of per record.
func (s *shard) observeSYNLocked(key netip.Prefix, done int, cfg *Config) {
	s.syns++
	st := s.states[key]
	if st == nil {
		st = s.admit(key, done, cfg)
	}
	st.count++
	st.outSYN++
	s.siftDown(st.idx)
}

func (s *shard) observeSYNACK(key netip.Prefix) {
	s.mu.Lock()
	s.observeSYNACKLocked(key)
	s.mu.Unlock()
}

func (s *shard) observeSYNACKLocked(key netip.Prefix) {
	if st := s.states[key]; st != nil {
		s.synAcks++
		st.inSYNACK++
	} else {
		s.untracked++
	}
}

func (s *shard) closePeriod(end time.Duration, cfg *core.Config, onReport func(netip.Prefix, core.Report)) {
	s.mu.Lock()
	for _, st := range s.heap {
		r, newAlarm := st.endPeriod(end, cfg)
		if newAlarm {
			s.alarmed++
		}
		if onReport != nil {
			onReport(st.key, r)
		}
	}
	s.mu.Unlock()
}

// Tracker is the keyed detection engine. Observe routes records onto
// shards concurrently; ClosePeriod must come from a single caller
// (the pipeline's aggregator) with no Observe in flight for
// deterministic period boundaries — exactly the discipline the
// ingest.Aggregator's single Feed/ClosePeriod caller already has.
type Tracker struct {
	cfg     Config
	shards  []*shard
	periods atomic.Int64
	unkeyed atomic.Uint64

	// sweepMu serializes whole-tracker sweeps: ClosePeriod holds it
	// exclusively for its full multi-shard pass, and View holds it
	// shared — so a view can never observe shard 0 folded into period
	// n+1 while shard 1 still sits in period n. Observe deliberately
	// does not touch it: per-record routing stays lock-striped and the
	// single-caller ClosePeriod discipline already excludes in-flight
	// records at boundaries.
	sweepMu sync.RWMutex

	// batchMu guards the per-shard grouping scratch ObserveBatch uses.
	// The canonical caller (the aggregator's single Feed goroutine) is
	// serial; the lock merely keeps an unexpected concurrent batch
	// caller safe, at one uncontended lock per chunk.
	batchMu sync.Mutex
	scratch [][]feedOp

	// OnReport, if set, receives every per-key period report as it
	// closes. Called under the shard lock; keep it cheap. Tests use it
	// to compare against a per-key core.Agent.
	OnReport func(key netip.Prefix, r core.Report)
}

// New builds a tracker. The per-key detector parameters are validated
// once here; admissions reuse them unchecked.
func New(cfg Config) (*Tracker, error) {
	cfg = cfg.Normalized()
	if cfg.KeyBits < 1 || cfg.KeyBits > 32 {
		return nil, fmt.Errorf("sourcetrack: key bits %d outside [1,32]", cfg.KeyBits)
	}
	if cfg.MaxSources < 1 {
		return nil, fmt.Errorf("sourcetrack: non-positive max sources %d", cfg.MaxSources)
	}
	if cfg.Shards < 1 || cfg.Shards > cfg.MaxSources {
		return nil, fmt.Errorf("sourcetrack: shard count %d outside [1,%d]", cfg.Shards, cfg.MaxSources)
	}
	if cfg.Agent.T0 <= 0 {
		return nil, errors.New("sourcetrack: non-positive observation period")
	}
	if cfg.Agent.MinK <= 0 {
		return nil, errors.New("sourcetrack: non-positive MinK")
	}
	if _, err := cusum.NewEWMA(cfg.Agent.Alpha); err != nil {
		return nil, fmt.Errorf("sourcetrack: alpha: %w", err)
	}
	if _, err := cusum.New(cfg.Agent.Offset, cfg.Agent.Threshold); err != nil {
		return nil, fmt.Errorf("sourcetrack: detector: %w", err)
	}
	perShard := (cfg.MaxSources + cfg.Shards - 1) / cfg.Shards
	t := &Tracker{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range t.shards {
		t.shards[i] = &shard{
			cap:    perShard,
			states: make(map[netip.Prefix]*keyState, perShard),
		}
	}
	return t, nil
}

// Config returns the tracker's effective configuration.
func (t *Tracker) Config() Config { return t.cfg }

// keyOf masks an address to the tracker's key prefix.
func (t *Tracker) keyOf(a netip.Addr) (netip.Prefix, bool) {
	if !a.IsValid() {
		return netip.Prefix{}, false
	}
	a = a.Unmap()
	bits := t.cfg.KeyBits
	if a.Is6() {
		bits = 128 - (32 - bits)
	}
	p, err := a.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, false
	}
	return p, true
}

// shardIndex routes a key to its lock stripe (inline FNV-1a; no
// per-record allocation).
func (t *Tracker) shardIndex(key netip.Prefix) int {
	if len(t.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	b := key.Addr().As16()
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= uint64(uint8(key.Bits()))
	h *= prime64
	return int(h % uint64(len(t.shards)))
}

func (t *Tracker) shardFor(key netip.Prefix) *shard {
	return t.shards[t.shardIndex(key)]
}

// Observe routes one record. Only the pair the paper's detector pairs
// is keyed: outgoing SYNs by source, incoming SYN/ACKs by
// destination — both name the inside host behind the connection.
// SYN/ACKs never admit a key (only SYN pressure does); a SYN/ACK for
// an untracked key is tallied in TrackerStats.UntrackedSYNACKs.
func (t *Tracker) Observe(r trace.Record) {
	switch {
	case r.Dir == trace.DirOut && r.Kind == packet.KindSYN:
		key, ok := t.keyOf(r.Src)
		if !ok {
			t.unkeyed.Add(1)
			return
		}
		t.shardFor(key).observeSYN(key, int(t.periods.Load()), &t.cfg)
	case r.Dir == trace.DirIn && r.Kind == packet.KindSYNACK:
		key, ok := t.keyOf(r.Dst)
		if !ok {
			t.unkeyed.Add(1)
			return
		}
		t.shardFor(key).observeSYNACK(key)
	}
}

// Record implements the ingest.RecordTap demux hook.
func (t *Tracker) Record(r trace.Record) { t.Observe(r) }

// keyRecord classifies one record into a feedOp: outgoing SYNs keyed
// by source, incoming SYN/ACKs by destination, everything else (and
// unkeyable addresses, which bump the unkeyed counter) ignored.
func (t *Tracker) keyRecord(r *trace.Record) (feedOp, bool) {
	switch {
	case r.Dir == trace.DirOut && r.Kind == packet.KindSYN:
		key, ok := t.keyOf(r.Src)
		if !ok {
			t.unkeyed.Add(1)
			return feedOp{}, false
		}
		return feedOp{key: key}, true
	case r.Dir == trace.DirIn && r.Kind == packet.KindSYNACK:
		key, ok := t.keyOf(r.Dst)
		if !ok {
			t.unkeyed.Add(1)
			return feedOp{}, false
		}
		return feedOp{key: key, synAck: true}, true
	}
	return feedOp{}, false
}

// applyLocked folds one pre-keyed op into the shard. Callers hold the
// shard lock; done is the tracker's completed-period clock, stable for
// the whole chunk because period closes are excluded while a batch is
// in flight.
func (s *shard) applyLocked(op feedOp, done int, cfg *Config) {
	if op.synAck {
		s.observeSYNACKLocked(op.key)
	} else {
		s.observeSYNLocked(op.key, done, cfg)
	}
}

// ObserveBatch routes a chunk of records, grouping ops per shard so
// each shard lock is taken once per chunk instead of once per record.
// Per-shard op order preserves record order, so the resulting state is
// bit-identical to calling Observe record by record (the equivalence
// the keyed fuzz target pins). The grouping scratch is retained across
// calls; steady-state batches allocate nothing.
func (t *Tracker) ObserveBatch(recs []trace.Record) {
	t.batchMu.Lock()
	defer t.batchMu.Unlock()
	if t.scratch == nil {
		t.scratch = make([][]feedOp, len(t.shards))
	}
	for i := range recs {
		op, ok := t.keyRecord(&recs[i])
		if !ok {
			continue
		}
		si := t.shardIndex(op.key)
		t.scratch[si] = append(t.scratch[si], op)
	}
	done := int(t.periods.Load())
	for si, ops := range t.scratch {
		if len(ops) == 0 {
			continue
		}
		s := t.shards[si]
		s.mu.Lock()
		for _, op := range ops {
			s.applyLocked(op, done, &t.cfg)
		}
		s.mu.Unlock()
		t.scratch[si] = ops[:0]
	}
}

// RecordBatch implements the ingest.BatchRecordTap demux hook.
func (t *Tracker) RecordBatch(recs []trace.Record) { t.ObserveBatch(recs) }

// ClosePeriod closes the observation period for every tracked key.
// index is the pipeline's period index (informational; the tracker
// keeps its own clock, which the daemon aligns at startup).
func (t *Tracker) ClosePeriod(index int, end time.Duration) {
	_ = index
	t.sweepMu.Lock()
	for _, s := range t.shards {
		s.closePeriod(end, &t.cfg.Agent, t.OnReport)
	}
	t.periods.Add(1)
	t.sweepMu.Unlock()
}

// Periods returns how many observation periods have closed, including
// resumed or fast-forwarded ones.
func (t *Tracker) Periods() int { return int(t.periods.Load()) }

// FastForward advances an empty tracker's period clock — used when
// keyed tracking is first enabled over an aggregate-only snapshot:
// keyed evidence starts at the resume point and keys admitted later
// fast-forward from there (see keyState.reset).
func (t *Tracker) FastForward(periods int) error {
	if periods < 0 {
		return fmt.Errorf("sourcetrack: negative period count %d", periods)
	}
	st := t.Stats()
	if st.Tracked != 0 || st.SYNs != 0 || st.Unkeyed != 0 || t.Periods() != 0 {
		return errors.New("sourcetrack: fast-forward on a non-fresh tracker")
	}
	t.periods.Store(int64(periods))
	return nil
}

// Stats sums the per-shard counters.
func (t *Tracker) Stats() TrackerStats {
	st := TrackerStats{Unkeyed: t.unkeyed.Load()}
	for _, s := range t.shards {
		s.mu.Lock()
		st.SYNs += s.syns
		st.SYNACKs += s.synAcks
		st.UntrackedSYNACKs += s.untracked
		st.Evicted += s.evicted
		st.Tracked += len(s.heap)
		st.Alarmed += s.alarmed
		s.mu.Unlock()
	}
	return st
}

// Sources returns the tracked keys ranked most-suspect first: alarmed
// keys, then by CUSUM statistic, SYN count and finally the key itself
// (a total order, so the ranking is deterministic). n > 0 truncates.
func (t *Tracker) Sources(n int) []SourceReport {
	out := make([]SourceReport, 0, 64)
	for _, s := range t.shards {
		s.mu.Lock()
		for _, st := range s.heap {
			out = append(out, st.report())
		}
		s.mu.Unlock()
	}
	slices.SortFunc(out, compareSourceReports)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TrackerView is one consistent observation of the tracker: the period
// clock, stats and ranked source list all describe the same instant —
// no period close can land between them. It is what /sources serves.
type TrackerView struct {
	Periods int
	Stats   TrackerStats
	Sources []SourceReport
}

// View captures a consistent view of the tracker in a single sweep.
// Unlike calling Periods, Stats and Sources back to back, the three
// parts cannot straddle a ClosePeriod: the whole collection runs under
// the shared sweep lock, touching each shard's lock exactly once. Every
// tracked key is collected; limit > 0 truncates the ranked list (the
// stats still describe the full population).
func (t *Tracker) View(limit int) TrackerView {
	t.sweepMu.RLock()
	v := TrackerView{
		Periods: int(t.periods.Load()),
		Stats:   TrackerStats{Unkeyed: t.unkeyed.Load()},
		Sources: make([]SourceReport, 0, 64),
	}
	for _, s := range t.shards {
		s.mu.Lock()
		v.Stats.SYNs += s.syns
		v.Stats.SYNACKs += s.synAcks
		v.Stats.UntrackedSYNACKs += s.untracked
		v.Stats.Evicted += s.evicted
		v.Stats.Tracked += len(s.heap)
		v.Stats.Alarmed += s.alarmed
		for _, st := range s.heap {
			v.Sources = append(v.Sources, st.report())
		}
		s.mu.Unlock()
	}
	t.sweepMu.RUnlock()
	slices.SortFunc(v.Sources, compareSourceReports)
	if limit > 0 && len(v.Sources) > limit {
		v.Sources = v.Sources[:limit]
	}
	return v
}

func compareSourceReports(a, b SourceReport) int {
	if a.Alarmed != b.Alarmed {
		if a.Alarmed {
			return -1
		}
		return 1
	}
	if a.Y != b.Y {
		if a.Y > b.Y {
			return -1
		}
		return 1
	}
	if a.Count != b.Count {
		if a.Count > b.Count {
			return -1
		}
		return 1
	}
	if c := a.Key.Addr().Compare(b.Key.Addr()); c != 0 {
		return c
	}
	return a.Key.Bits() - b.Key.Bits()
}

// ProcessTrace replays a recorded trace through the tracker with the
// same skip/boundary/tail mechanics as core.Agent.ProcessTrace (and
// the ingest.Aggregator): resume-aware leading-period skip, a period
// boundary every Agent.T0, trailing partial period discarded.
func (t *Tracker) ProcessTrace(tr *trace.Trace) error {
	t0 := t.cfg.Agent.T0
	if tr.Span <= 0 {
		return errors.New("sourcetrack: trace has no span")
	}
	periods := int(tr.Span / t0)
	if periods == 0 {
		return fmt.Errorf("sourcetrack: trace span %v shorter than one period %v", tr.Span, t0)
	}
	done := t.Periods()
	if done >= periods {
		return nil
	}
	resumed := t0 * time.Duration(done)
	next := resumed + t0
	for _, r := range tr.Records {
		if r.Ts < resumed {
			continue // counted before the snapshot
		}
		for r.Ts >= next && done < periods {
			t.ClosePeriod(done, next)
			next += t0
			done++
		}
		if done >= periods {
			break
		}
		t.Observe(r)
	}
	for done < periods {
		t.ClosePeriod(done, next)
		next += t0
		done++
	}
	return nil
}
