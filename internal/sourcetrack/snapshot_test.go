package sourcetrack

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/trace"
)

// busyTracker builds a small tracker with real history: more distinct
// keys than capacity (so evictions happened), one flooding key (so an
// alarm latched), and several closed periods.
func busyTracker(t *testing.T) *Tracker {
	t.Helper()
	tk, err := New(Config{
		KeyBits:    24,
		MaxSources: 4,
		Shards:     2,
		Agent:      core.Config{T0: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	for period := 0; period < 6; period++ {
		for k := 0; k < 8; k++ {
			syns := 1 + k
			if k == 0 {
				syns = 200 // the flooder: never answered, alarms fast
			}
			for s := 0; s < syns; s++ {
				tk.Observe(trace.Record{
					Ts:   time.Duration(period) * time.Second,
					Kind: packet.KindSYN,
					Dir:  trace.DirOut,
					Src:  netip.AddrFrom4([4]byte{10, byte(k), 0, byte(1 + s%200)}),
					Dst:  netip.MustParseAddr("11.9.9.9"),
				})
			}
			if k > 0 { // answered keys keep their balance
				for s := 0; s < syns; s++ {
					tk.Observe(trace.Record{
						Ts:   time.Duration(period) * time.Second,
						Kind: packet.KindSYNACK,
						Dir:  trace.DirIn,
						Src:  netip.MustParseAddr("11.9.9.9"),
						Dst:  netip.AddrFrom4([4]byte{10, byte(k), 0, 1}),
					})
				}
			}
		}
		// A SYN/ACK for a key no SYN ever admitted lands in the
		// untracked ledger.
		tk.Observe(trace.Record{
			Ts:   time.Duration(period) * time.Second,
			Kind: packet.KindSYNACK,
			Dir:  trace.DirIn,
			Src:  netip.MustParseAddr("11.9.9.9"),
			Dst:  netip.MustParseAddr("10.99.0.1"),
		})
		tk.ClosePeriod(period, time.Duration(period+1)*time.Second)
	}
	st := tk.Stats()
	if st.Evicted == 0 || st.Alarmed == 0 || st.UntrackedSYNACKs == 0 {
		t.Fatalf("busy tracker not busy enough: %+v", st)
	}
	return tk
}

func TestSnapshotRoundTrip(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()

	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, decoded) {
		t.Fatalf("encode/decode changed the snapshot")
	}

	// Restoring under the same config — and under a different shard
	// count, which is an execution detail — reproduces the state
	// exactly, including the stats ledger.
	for _, shards := range []int{1, 2, 3} {
		cfg := tk.Config()
		cfg.Shards = shards
		restored, err := Restore(decoded, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := restored.Snapshot(); !reflect.DeepEqual(snap, got) {
			t.Fatalf("shards=%d: restored snapshot differs", shards)
		}
	}
}

// TestSnapshotResumeEquivalence pins restart transparency at the
// tracker level: half-run, snapshot, restore, finish — byte-identical
// to one uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	p := trace.LBL()
	tr := mixedTrace(t, p, 23, netip.MustParsePrefix("240.7.0.0/24"), 25)
	cfg := Config{KeyBits: 24, MaxSources: 512, Shards: 1, Agent: core.Config{T0: 20 * time.Second}}

	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}

	half := *tr
	half.Span = tr.Span / 2
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.ProcessTrace(&half); err != nil {
		t.Fatal(err)
	}
	data, err := first.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}

	wantBytes, err := full.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := resumed.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantBytes) != string(gotBytes) {
		t.Fatalf("resumed run is not byte-identical to the uninterrupted run")
	}
}

func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()
	base := tk.Config()

	mutations := map[string]func(*Config){
		"key bits":    func(c *Config) { c.KeyBits = 16 },
		"max sources": func(c *Config) { c.MaxSources = 8 },
		"offset":      func(c *Config) { c.Agent.Offset = 0.5 },
		"period":      func(c *Config) { c.Agent.T0 = 2 * time.Second },
		"min k":       func(c *Config) { c.Agent.MinK = 3 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Restore(snap, cfg); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s change: got %v, want ErrConfigMismatch", name, err)
		}
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	tk := busyTracker(t)
	base := tk.Snapshot()
	cfg := tk.Config()

	corrupt := map[string]func(*Snapshot){
		"version": func(s *Snapshot) { s.Version = 99 },
		"unmasked key": func(s *Snapshot) {
			s.Keys[0].Key = netip.MustParsePrefix("10.0.0.7/24")
		},
		"wrong-width key": func(s *Snapshot) {
			s.Keys[0].Key = netip.MustParsePrefix("10.0.0.0/16")
		},
		"period clock ahead": func(s *Snapshot) { s.Keys[0].Periods = s.Periods + 1 },
		"negative periods":   func(s *Snapshot) { s.Periods = -1 },
		"error above count": func(s *Snapshot) {
			s.Keys[0].Err = s.Keys[0].Count + 1
		},
		"duplicate key": func(s *Snapshot) { s.Keys[1] = s.Keys[0] },
		"over capacity": func(s *Snapshot) {
			for len(s.Keys) <= s.MaxSources {
				k := s.Keys[len(s.Keys)-1]
				k.Key = netip.MustParsePrefix("172.16.0.0/24")
				s.Keys = append(s.Keys, k)
			}
		},
		"bad kbar": func(s *Snapshot) { s.Keys[0].KBar = -1 },
		"bad y":    func(s *Snapshot) { s.Keys[0].Y = -1 },
	}
	for name, mutate := range corrupt {
		data, err := base.Encode()
		if err != nil {
			t.Fatal(err)
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&s)
		if _, err := Restore(s, cfg); err == nil {
			t.Errorf("%s: Restore accepted a corrupt snapshot", name)
		}
	}
}

// FuzzKeyedSnapshotRoundTrip pins three properties over arbitrary
// bytes: DecodeSnapshot never panics, anything it accepts re-encodes
// to an identical snapshot (encode∘decode identity), and Restore
// never panics on a decoded snapshot (it may reject it).
func FuzzKeyedSnapshotRoundTrip(f *testing.F) {
	tk, err := New(Config{KeyBits: 24, MaxSources: 4, Agent: core.Config{T0: time.Second}})
	if err != nil {
		f.Fatal(err)
	}
	tk.Observe(trace.Record{
		Kind: packet.KindSYN, Dir: trace.DirOut,
		Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("11.9.9.9"),
	})
	tk.ClosePeriod(0, time.Second)
	valid, err := tk.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"keys":[{"key":"10.0.0.0/24"}]}`))
	f.Add([]byte(`{"version":1,"periods":-3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc, err := s.Encode()
		if err != nil {
			return // NaN/Inf floats are unencodable; decode-only is fine
		}
		again, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("encode/decode not an identity:\n%+v\n%+v", s, again)
		}
		// Restore must reject, never panic.
		_, _ = Restore(s, Config{KeyBits: s.KeyBits, MaxSources: s.MaxSources, Agent: s.Agent})
	})
}

// TestMigrateSnapshotParams pins the snapshot-compatible half of the
// migrate matrix: detector parameters (alpha, a, N) rewrite in place
// with every per-key statistic carried, and the result restores
// cleanly under the new config.
func TestMigrateSnapshotParams(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()

	next := tk.Config()
	next.Agent.Alpha = 0.8
	next.Agent.Offset = 0.5
	next.Agent.Threshold = 2.5

	mig, ok := MigrateSnapshot(snap, next)
	if !ok {
		t.Fatal("param-only change refused migration")
	}
	if mig.Agent != next.Normalized().Agent {
		t.Fatalf("migrated agent config %+v, want %+v", mig.Agent, next.Normalized().Agent)
	}
	if len(mig.Keys) != len(snap.Keys) {
		t.Fatalf("migration changed key count: %d -> %d", len(snap.Keys), len(mig.Keys))
	}
	for i, ks := range mig.Keys {
		want := snap.Keys[i]
		want.Key = ks.Key // same order pinned below
		if ks.Key != snap.Keys[i].Key {
			t.Fatalf("key order changed at %d: %v vs %v", i, ks.Key, snap.Keys[i].Key)
		}
		if ks.Y != snap.Keys[i].Y || ks.KBar != snap.Keys[i].KBar ||
			ks.Count != snap.Keys[i].Count || ks.Periods != snap.Keys[i].Periods ||
			ks.AlarmLatched != snap.Keys[i].AlarmLatched {
			t.Fatalf("key %v evidence not carried: %+v vs %+v", ks.Key, ks, snap.Keys[i])
		}
	}
	if mig.Stats.Evicted != snap.Stats.Evicted {
		t.Fatalf("param migration counted evictions: %d -> %d", snap.Stats.Evicted, mig.Stats.Evicted)
	}

	restored, err := Restore(mig, next)
	if err != nil {
		t.Fatalf("restore migrated snapshot: %v", err)
	}
	// The migrated tracker keeps detecting: another period closes and
	// the clock advances over the carried population.
	restored.ClosePeriod(restored.Periods(), time.Duration(restored.Periods()+1)*time.Second)
	if restored.Periods() != snap.Periods+1 {
		t.Fatalf("migrated tracker period clock %d, want %d", restored.Periods(), snap.Periods+1)
	}
	// The original snapshot still hard-errors under the new config —
	// migration is the only path around ErrConfigMismatch.
	if _, err := Restore(snap, next); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("unmigrated restore under new config: %v", err)
	}
}

// TestMigrateSnapshotResize pins MaxSources migration: shrinking keeps
// the top keys by Space-Saving count and books the rest as evictions;
// growing keeps everything.
func TestMigrateSnapshotResize(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()
	if len(snap.Keys) != 4 {
		t.Fatalf("fixture drifted: %d keys", len(snap.Keys))
	}

	shrink := tk.Config()
	shrink.MaxSources = 2
	mig, ok := MigrateSnapshot(snap, shrink)
	if !ok {
		t.Fatal("capacity change refused migration")
	}
	if len(mig.Keys) != 2 || mig.MaxSources != 2 {
		t.Fatalf("shrink kept %d keys under max %d", len(mig.Keys), mig.MaxSources)
	}
	if mig.Stats.Evicted != snap.Stats.Evicted+2 {
		t.Fatalf("shrink evictions %d, want %d", mig.Stats.Evicted, snap.Stats.Evicted+2)
	}
	if mig.Stats.Tracked != 2 {
		t.Fatalf("shrink tracked %d, want 2", mig.Stats.Tracked)
	}
	// The survivors are the top keys by count.
	minKept := mig.Keys[0].Count
	for _, ks := range mig.Keys[1:] {
		if ks.Count < minKept {
			minKept = ks.Count
		}
	}
	kept := make(map[netip.Prefix]bool, len(mig.Keys))
	for _, ks := range mig.Keys {
		kept[ks.Key] = true
	}
	for _, ks := range snap.Keys {
		if !kept[ks.Key] && ks.Count > minKept {
			t.Fatalf("dropped key %v (count %d) outranks a kept key (count %d)", ks.Key, ks.Count, minKept)
		}
	}
	if _, err := Restore(mig, shrink); err != nil {
		t.Fatalf("restore shrunk snapshot: %v", err)
	}

	grow := tk.Config()
	grow.MaxSources = 64
	mig, ok = MigrateSnapshot(snap, grow)
	if !ok {
		t.Fatal("capacity growth refused migration")
	}
	if len(mig.Keys) != len(snap.Keys) || mig.Stats.Evicted != snap.Stats.Evicted {
		t.Fatalf("growth dropped keys: %d keys, evicted %d", len(mig.Keys), mig.Stats.Evicted)
	}
	if _, err := Restore(mig, grow); err != nil {
		t.Fatalf("restore grown snapshot: %v", err)
	}
}

// TestMigrateSnapshotRefusesSemanticChanges pins the incompatible half
// of the matrix: keying and period-semantics changes cannot migrate.
func TestMigrateSnapshotRefusesSemanticChanges(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()
	base := tk.Config()

	mutations := map[string]func(*Config){
		"keyBits": func(c *Config) { c.KeyBits = 16 },
		"t0":      func(c *Config) { c.Agent.T0 = 2 * time.Second },
		"minK":    func(c *Config) { c.Agent.MinK = 20 },
		"warmup":  func(c *Config) { c.Agent.WarmupPeriods = 3 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, ok := MigrateSnapshot(snap, cfg); ok {
			t.Errorf("%s change migrated; per-key evidence is not portable across it", name)
		}
	}
	// The identity migration is a no-op round trip.
	mig, ok := MigrateSnapshot(snap, base)
	if !ok {
		t.Fatal("identity migration refused")
	}
	if !reflect.DeepEqual(mig, snap) {
		t.Fatal("identity migration changed the snapshot")
	}
}
