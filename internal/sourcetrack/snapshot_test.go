package sourcetrack

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/trace"
)

// busyTracker builds a small tracker with real history: more distinct
// keys than capacity (so evictions happened), one flooding key (so an
// alarm latched), and several closed periods.
func busyTracker(t *testing.T) *Tracker {
	t.Helper()
	tk, err := New(Config{
		KeyBits:    24,
		MaxSources: 4,
		Shards:     2,
		Agent:      core.Config{T0: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	for period := 0; period < 6; period++ {
		for k := 0; k < 8; k++ {
			syns := 1 + k
			if k == 0 {
				syns = 200 // the flooder: never answered, alarms fast
			}
			for s := 0; s < syns; s++ {
				tk.Observe(trace.Record{
					Ts:   time.Duration(period) * time.Second,
					Kind: packet.KindSYN,
					Dir:  trace.DirOut,
					Src:  netip.AddrFrom4([4]byte{10, byte(k), 0, byte(1 + s%200)}),
					Dst:  netip.MustParseAddr("11.9.9.9"),
				})
			}
			if k > 0 { // answered keys keep their balance
				for s := 0; s < syns; s++ {
					tk.Observe(trace.Record{
						Ts:   time.Duration(period) * time.Second,
						Kind: packet.KindSYNACK,
						Dir:  trace.DirIn,
						Src:  netip.MustParseAddr("11.9.9.9"),
						Dst:  netip.AddrFrom4([4]byte{10, byte(k), 0, 1}),
					})
				}
			}
		}
		// A SYN/ACK for a key no SYN ever admitted lands in the
		// untracked ledger.
		tk.Observe(trace.Record{
			Ts:   time.Duration(period) * time.Second,
			Kind: packet.KindSYNACK,
			Dir:  trace.DirIn,
			Src:  netip.MustParseAddr("11.9.9.9"),
			Dst:  netip.MustParseAddr("10.99.0.1"),
		})
		tk.ClosePeriod(period, time.Duration(period+1)*time.Second)
	}
	st := tk.Stats()
	if st.Evicted == 0 || st.Alarmed == 0 || st.UntrackedSYNACKs == 0 {
		t.Fatalf("busy tracker not busy enough: %+v", st)
	}
	return tk
}

func TestSnapshotRoundTrip(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()

	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, decoded) {
		t.Fatalf("encode/decode changed the snapshot")
	}

	// Restoring under the same config — and under a different shard
	// count, which is an execution detail — reproduces the state
	// exactly, including the stats ledger.
	for _, shards := range []int{1, 2, 3} {
		cfg := tk.Config()
		cfg.Shards = shards
		restored, err := Restore(decoded, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := restored.Snapshot(); !reflect.DeepEqual(snap, got) {
			t.Fatalf("shards=%d: restored snapshot differs", shards)
		}
	}
}

// TestSnapshotResumeEquivalence pins restart transparency at the
// tracker level: half-run, snapshot, restore, finish — byte-identical
// to one uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	p := trace.LBL()
	tr := mixedTrace(t, p, 23, netip.MustParsePrefix("240.7.0.0/24"), 25)
	cfg := Config{KeyBits: 24, MaxSources: 512, Shards: 1, Agent: core.Config{T0: 20 * time.Second}}

	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}

	half := *tr
	half.Span = tr.Span / 2
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.ProcessTrace(&half); err != nil {
		t.Fatal(err)
	}
	data, err := first.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}

	wantBytes, err := full.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := resumed.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantBytes) != string(gotBytes) {
		t.Fatalf("resumed run is not byte-identical to the uninterrupted run")
	}
}

func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	tk := busyTracker(t)
	snap := tk.Snapshot()
	base := tk.Config()

	mutations := map[string]func(*Config){
		"key bits":    func(c *Config) { c.KeyBits = 16 },
		"max sources": func(c *Config) { c.MaxSources = 8 },
		"offset":      func(c *Config) { c.Agent.Offset = 0.5 },
		"period":      func(c *Config) { c.Agent.T0 = 2 * time.Second },
		"min k":       func(c *Config) { c.Agent.MinK = 3 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Restore(snap, cfg); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s change: got %v, want ErrConfigMismatch", name, err)
		}
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	tk := busyTracker(t)
	base := tk.Snapshot()
	cfg := tk.Config()

	corrupt := map[string]func(*Snapshot){
		"version": func(s *Snapshot) { s.Version = 99 },
		"unmasked key": func(s *Snapshot) {
			s.Keys[0].Key = netip.MustParsePrefix("10.0.0.7/24")
		},
		"wrong-width key": func(s *Snapshot) {
			s.Keys[0].Key = netip.MustParsePrefix("10.0.0.0/16")
		},
		"period clock ahead": func(s *Snapshot) { s.Keys[0].Periods = s.Periods + 1 },
		"negative periods":   func(s *Snapshot) { s.Periods = -1 },
		"error above count": func(s *Snapshot) {
			s.Keys[0].Err = s.Keys[0].Count + 1
		},
		"duplicate key": func(s *Snapshot) { s.Keys[1] = s.Keys[0] },
		"over capacity": func(s *Snapshot) {
			for len(s.Keys) <= s.MaxSources {
				k := s.Keys[len(s.Keys)-1]
				k.Key = netip.MustParsePrefix("172.16.0.0/24")
				s.Keys = append(s.Keys, k)
			}
		},
		"bad kbar": func(s *Snapshot) { s.Keys[0].KBar = -1 },
		"bad y":    func(s *Snapshot) { s.Keys[0].Y = -1 },
	}
	for name, mutate := range corrupt {
		data, err := base.Encode()
		if err != nil {
			t.Fatal(err)
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&s)
		if _, err := Restore(s, cfg); err == nil {
			t.Errorf("%s: Restore accepted a corrupt snapshot", name)
		}
	}
}

// FuzzKeyedSnapshotRoundTrip pins three properties over arbitrary
// bytes: DecodeSnapshot never panics, anything it accepts re-encodes
// to an identical snapshot (encode∘decode identity), and Restore
// never panics on a decoded snapshot (it may reject it).
func FuzzKeyedSnapshotRoundTrip(f *testing.F) {
	tk, err := New(Config{KeyBits: 24, MaxSources: 4, Agent: core.Config{T0: time.Second}})
	if err != nil {
		f.Fatal(err)
	}
	tk.Observe(trace.Record{
		Kind: packet.KindSYN, Dir: trace.DirOut,
		Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("11.9.9.9"),
	})
	tk.ClosePeriod(0, time.Second)
	valid, err := tk.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"keys":[{"key":"10.0.0.0/24"}]}`))
	f.Add([]byte(`{"version":1,"periods":-3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc, err := s.Encode()
		if err != nil {
			return // NaN/Inf floats are unencodable; decode-only is fine
		}
		again, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("encode/decode not an identity:\n%+v\n%+v", s, again)
		}
		// Restore must reject, never panic.
		_, _ = Restore(s, Config{KeyBits: s.KeyBits, MaxSources: s.MaxSources, Agent: s.Agent})
	})
}
