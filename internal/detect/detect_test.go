package detect

import (
	"math/rand"
	"testing"
)

// mkSeries builds benign periods followed by flood periods, with
// multiplicative noise.
func mkSeries(benign, flood int, baseline, floodExtra float64, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, 0, benign+flood)
	for i := 0; i < benign+flood; i++ {
		ack := baseline * (1 + 0.1*rng.NormFloat64())
		if ack < 0 {
			ack = 0
		}
		syn := ack * 1.05
		if i >= benign {
			syn += floodExtra
		}
		out = append(out, Observation{OutSYN: syn, InSYNACK: ack})
	}
	return out
}

func TestStaticThresholdValidation(t *testing.T) {
	if _, err := NewStaticThreshold(0); err != ErrBadParam {
		t.Errorf("error = %v, want ErrBadParam", err)
	}
	if _, err := NewStaticThreshold(-5); err != ErrBadParam {
		t.Errorf("error = %v, want ErrBadParam", err)
	}
}

func TestStaticThresholdDetectsAndLatches(t *testing.T) {
	d, err := NewStaticThreshold(150)
	if err != nil {
		t.Fatal(err)
	}
	if d.Observe(Observation{OutSYN: 100}) {
		t.Error("alarm below threshold")
	}
	if !d.Observe(Observation{OutSYN: 200}) {
		t.Error("no alarm above threshold")
	}
	if !d.Observe(Observation{OutSYN: 10}) {
		t.Error("alarm did not latch")
	}
	d.Reset()
	if d.Alarmed() {
		t.Error("Reset failed")
	}
	if d.Name() != "static-threshold" {
		t.Error("name wrong")
	}
}

func TestRatioDetectorValidation(t *testing.T) {
	if _, err := NewRatioDetector(0.9, 1); err != ErrBadParam {
		t.Error("ratio <= 1 accepted")
	}
	if _, err := NewRatioDetector(2, 0); err != ErrBadParam {
		t.Error("zero floor accepted")
	}
}

func TestRatioDetectorBehavior(t *testing.T) {
	d, err := NewRatioDetector(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Observe(Observation{OutSYN: 150, InSYNACK: 100}) {
		t.Error("benign ratio alarmed")
	}
	if !d.Observe(Observation{OutSYN: 300, InSYNACK: 100}) {
		t.Error("3x ratio not alarmed")
	}
	d.Reset()
	// Floor guards division: 5 SYNs, 0 SYN/ACKs -> ratio 5 > 2.
	if !d.Observe(Observation{OutSYN: 5, InSYNACK: 0}) {
		t.Error("idle-link flood not caught via floor")
	}
	if d.Name() != "syn-synack-ratio" {
		t.Error("name wrong")
	}
}

func TestAdaptiveEWMAValidation(t *testing.T) {
	if _, err := NewAdaptiveEWMA(0.9, 0, 5); err != ErrBadParam {
		t.Error("zero k accepted")
	}
	if _, err := NewAdaptiveEWMA(0.9, 3, -1); err != ErrBadParam {
		t.Error("negative warmup accepted")
	}
	if _, err := NewAdaptiveEWMA(2, 3, 5); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestAdaptiveEWMADetectsStep(t *testing.T) {
	d, err := NewAdaptiveEWMA(0.9, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	series := mkSeries(30, 10, 100, 200, 1)
	res := Run(d, series)
	if res.FirstAlarm < 30 {
		t.Errorf("alarm at %d, before the flood at 30", res.FirstAlarm)
	}
	if res.FirstAlarm < 0 {
		t.Error("step flood not detected")
	}
}

func TestAdaptiveEWMAWarmupSuppressesEarlyAlarms(t *testing.T) {
	d, _ := NewAdaptiveEWMA(0.9, 3, 10)
	// Huge first observation: within warmup, must not alarm.
	if d.Observe(Observation{OutSYN: 1e6}) {
		t.Error("alarm during warmup")
	}
}

func TestCusumDetectorMatchesPaperRule(t *testing.T) {
	d, err := NewCusumDetector(0.35, 1.05, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	series := mkSeries(20, 10, 100, 70, 2) // drift = 0.7 = h
	res := Run(d, series)
	if res.FirstAlarm < 0 {
		t.Fatal("CUSUM missed an h-sized flood")
	}
	delay := res.FirstAlarm - 20
	if delay < 2 || delay > 6 {
		t.Errorf("CUSUM delay = %d periods, want ≈3 (designed)", delay)
	}
	if d.Statistic() <= 1.05 {
		t.Errorf("statistic = %v, want > N", d.Statistic())
	}
	if d.Name() != "syndog-cusum" {
		t.Error("name wrong")
	}
}

func TestCusumDetectorValidation(t *testing.T) {
	if _, err := NewCusumDetector(0, 1.05, 0.9); err == nil {
		t.Error("zero offset accepted")
	}
	if _, err := NewCusumDetector(0.35, 1.05, 2); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestCusumBeatsAdaptiveOnSlowRamp(t *testing.T) {
	// A slow ramp drags the adaptive baseline along; CUSUM accumulates
	// the normalized excess and still fires. This is the package-level
	// motivation for the paper's choice.
	rng := rand.New(rand.NewSource(9))
	var series []Observation
	for i := 0; i < 30; i++ {
		ack := 100 * (1 + 0.05*rng.NormFloat64())
		series = append(series, Observation{OutSYN: ack * 1.02, InSYNACK: ack})
	}
	for i := 0; i < 40; i++ {
		ack := 100 * (1 + 0.05*rng.NormFloat64())
		extra := 2.0 * float64(i+1) // grows 2 SYN/period
		series = append(series, Observation{OutSYN: ack*1.02 + extra, InSYNACK: ack})
	}
	cus, _ := NewCusumDetector(0.35, 1.05, 0.9)
	ada, _ := NewAdaptiveEWMA(0.7, 6, 10)
	cusRes := Run(cus, series)
	adaRes := Run(ada, series)
	if cusRes.FirstAlarm < 0 {
		t.Fatal("CUSUM missed the ramp")
	}
	if adaRes.FirstAlarm >= 0 && adaRes.FirstAlarm <= cusRes.FirstAlarm {
		t.Errorf("adaptive (%d) beat CUSUM (%d) on a slow ramp",
			adaRes.FirstAlarm, cusRes.FirstAlarm)
	}
}

func TestStaticThresholdIsSiteDependent(t *testing.T) {
	// The same absolute limit that is quiet on a small site fires
	// constantly on a big one — the portability failure SYN-dog's
	// normalization removes.
	limit := 500.0
	small := mkSeries(50, 0, 100, 0, 3) // benign small site
	big := mkSeries(50, 0, 2000, 0, 4)  // benign big site
	dSmall, _ := NewStaticThreshold(limit)
	dBig, _ := NewStaticThreshold(limit)
	if Run(dSmall, small).FirstAlarm >= 0 {
		t.Error("false alarm on small site")
	}
	if Run(dBig, big).FirstAlarm < 0 {
		t.Error("expected the un-normalized threshold to false-alarm on the big site")
	}
	// SYN-dog's normalized rule is quiet on both.
	cSmall, _ := NewCusumDetector(0.35, 1.05, 0.9)
	cBig, _ := NewCusumDetector(0.35, 1.05, 0.9)
	if Run(cSmall, small).FirstAlarm >= 0 || Run(cBig, big).FirstAlarm >= 0 {
		t.Error("CUSUM false alarm on benign traffic")
	}
}

func TestRunResetsDetector(t *testing.T) {
	d, _ := NewStaticThreshold(10)
	d.Observe(Observation{OutSYN: 100})
	if !d.Alarmed() {
		t.Fatal("setup failed")
	}
	res := Run(d, []Observation{{OutSYN: 1}})
	if res.FirstAlarm != -1 {
		t.Error("Run did not Reset the detector first")
	}
}
