// Package detect provides the baseline flood detectors that the
// ablation benchmarks compare SYN-dog's CUSUM against. The paper's
// introduction contrasts SYN-dog with stateful or threshold-style
// defenses; these baselines make the comparison concrete:
//
//   - StaticThreshold: alarm when the raw outgoing-SYN rate exceeds a
//     fixed level — the naive operator rule. Site-dependent and
//     blind to slow floods on busy links.
//   - RatioDetector: alarm when SYN/SYNACK exceeds a fixed ratio —
//     normalizes for size but has no memory, so bursty noise triggers
//     it and slow accumulation escapes it.
//   - AdaptiveEWMA: alarm when the SYN count deviates from its own
//     EWMA by more than k standard deviations — adaptive, but the
//     flood itself poisons the baseline (no CUSUM-style reset-to-zero
//     drift), delaying or suppressing detection.
//
// All detectors consume the same per-period observations SYN-dog sees
// (outgoing SYNs, incoming SYN/ACKs), so differences in detection
// delay and false alarms are attributable to the decision rule alone.
package detect

import (
	"errors"
	"math"

	"repro/internal/cusum"
)

// Observation is one observation period's counts, as delivered by the
// SYN-dog sniffers.
type Observation struct {
	OutSYN   float64
	InSYNACK float64
}

// Detector is the common decision interface: one call per observation
// period, returning the alarm decision after folding the period in.
// Implementations latch: once true, always true until Reset.
type Detector interface {
	// Observe consumes one period and returns the (latched) decision.
	Observe(o Observation) bool
	// Alarmed reports the latched decision.
	Alarmed() bool
	// Reset clears the alarm and decision state.
	Reset()
	// Name identifies the detector in reports.
	Name() string
}

// ErrBadParam reports an invalid detector parameter.
var ErrBadParam = errors.New("detect: invalid parameter")

// StaticThreshold alarms when OutSYN exceeds Limit.
type StaticThreshold struct {
	limit   float64
	alarmed bool
}

// NewStaticThreshold builds the detector; limit must be positive.
func NewStaticThreshold(limit float64) (*StaticThreshold, error) {
	if limit <= 0 || math.IsNaN(limit) {
		return nil, ErrBadParam
	}
	return &StaticThreshold{limit: limit}, nil
}

// Observe implements Detector.
func (d *StaticThreshold) Observe(o Observation) bool {
	if o.OutSYN > d.limit {
		d.alarmed = true
	}
	return d.alarmed
}

// Alarmed implements Detector.
func (d *StaticThreshold) Alarmed() bool { return d.alarmed }

// Reset implements Detector.
func (d *StaticThreshold) Reset() { d.alarmed = false }

// Name implements Detector.
func (d *StaticThreshold) Name() string { return "static-threshold" }

// RatioDetector alarms when OutSYN / max(InSYNACK, floor) exceeds
// Ratio. It is the memoryless cousin of SYN-dog's normalized test.
type RatioDetector struct {
	ratio   float64
	floor   float64
	alarmed bool
}

// NewRatioDetector builds the detector. ratio must exceed 1 (SYNs
// always slightly outnumber SYN/ACKs); floor guards the denominator.
func NewRatioDetector(ratio, floor float64) (*RatioDetector, error) {
	if ratio <= 1 || floor <= 0 || math.IsNaN(ratio) {
		return nil, ErrBadParam
	}
	return &RatioDetector{ratio: ratio, floor: floor}, nil
}

// Observe implements Detector.
func (d *RatioDetector) Observe(o Observation) bool {
	den := o.InSYNACK
	if den < d.floor {
		den = d.floor
	}
	if o.OutSYN/den > d.ratio {
		d.alarmed = true
	}
	return d.alarmed
}

// Alarmed implements Detector.
func (d *RatioDetector) Alarmed() bool { return d.alarmed }

// Reset implements Detector.
func (d *RatioDetector) Reset() { d.alarmed = false }

// Name implements Detector.
func (d *RatioDetector) Name() string { return "syn-synack-ratio" }

// AdaptiveEWMA tracks the SYN count's mean and deviation with EWMAs
// and alarms on a k-sigma excursion. Unlike CUSUM it keeps adapting
// during the anomaly, so a patient attacker ramping slowly can drag
// the baseline up with them.
type AdaptiveEWMA struct {
	k       float64
	mean    *cusum.EWMA
	absDev  *cusum.EWMA
	minDev  float64
	alarmed bool
	primed  int
	warmup  int
}

// NewAdaptiveEWMA builds the detector: alpha is the EWMA memory,
// k the sigma multiplier, warmup the number of periods consumed before
// decisions are made (to let the baseline settle).
func NewAdaptiveEWMA(alpha, k float64, warmup int) (*AdaptiveEWMA, error) {
	if k <= 0 || warmup < 0 {
		return nil, ErrBadParam
	}
	mean, err := cusum.NewEWMA(alpha)
	if err != nil {
		return nil, err
	}
	dev, err := cusum.NewEWMA(alpha)
	if err != nil {
		return nil, err
	}
	return &AdaptiveEWMA{k: k, mean: mean, absDev: dev, minDev: 1, warmup: warmup}, nil
}

// Observe implements Detector.
func (d *AdaptiveEWMA) Observe(o Observation) bool {
	m := d.mean.Value()
	dev := d.absDev.Value()
	if dev < d.minDev {
		dev = d.minDev
	}
	if d.primed >= d.warmup && o.OutSYN > m+d.k*dev {
		d.alarmed = true
		// The anomaly is excluded from the baseline once flagged, a
		// common hardening; before flagging, everything is folded in,
		// which is exactly the poisoning weakness.
		return d.alarmed
	}
	d.primed++
	d.mean.Update(o.OutSYN)
	d.absDev.Update(math.Abs(o.OutSYN - m))
	return d.alarmed
}

// Alarmed implements Detector.
func (d *AdaptiveEWMA) Alarmed() bool { return d.alarmed }

// Reset implements Detector.
func (d *AdaptiveEWMA) Reset() { d.alarmed = false }

// Name implements Detector.
func (d *AdaptiveEWMA) Name() string { return "adaptive-ewma" }

// CusumDetector adapts the SYN-dog decision rule (normalize by an
// EWMA K̄, then non-parametric CUSUM) to the Detector interface so it
// can run head-to-head with the baselines.
type CusumDetector struct {
	det  *cusum.Detector
	kBar *cusum.EWMA
	minK float64
}

// NewCusumDetector builds the SYN-dog rule with the given parameters
// (use cusum.DefaultOffset / cusum.DefaultThreshold / 0.9 to match the
// paper).
func NewCusumDetector(offset, threshold, alpha float64) (*CusumDetector, error) {
	det, err := cusum.New(offset, threshold)
	if err != nil {
		return nil, err
	}
	kBar, err := cusum.NewEWMA(alpha)
	if err != nil {
		return nil, err
	}
	return &CusumDetector{det: det, kBar: kBar, minK: 1}, nil
}

// Observe implements Detector.
func (d *CusumDetector) Observe(o Observation) bool {
	k := d.kBar.Update(o.InSYNACK)
	if k < d.minK {
		k = d.minK
	}
	return d.det.Observe((o.OutSYN - o.InSYNACK) / k)
}

// Alarmed implements Detector.
func (d *CusumDetector) Alarmed() bool { return d.det.Alarmed() }

// Reset implements Detector.
func (d *CusumDetector) Reset() { d.det.Reset() }

// Name implements Detector.
func (d *CusumDetector) Name() string { return "syndog-cusum" }

// Statistic exposes yn for plotting.
func (d *CusumDetector) Statistic() float64 { return d.det.Statistic() }

// Compile-time interface checks.
var (
	_ Detector = (*StaticThreshold)(nil)
	_ Detector = (*RatioDetector)(nil)
	_ Detector = (*AdaptiveEWMA)(nil)
	_ Detector = (*CusumDetector)(nil)
)

// RunResult summarizes one detector's behavior over a series.
type RunResult struct {
	Name string
	// FirstAlarm is the 0-based period of the first alarm, or -1.
	FirstAlarm int
}

// Run replays a series of observations through d (after Reset) and
// reports when it first alarmed.
func Run(d Detector, series []Observation) RunResult {
	d.Reset()
	res := RunResult{Name: d.Name(), FirstAlarm: -1}
	for i, o := range series {
		if d.Observe(o) && res.FirstAlarm < 0 {
			res.FirstAlarm = i
		}
	}
	return res
}
