package ingest

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/trace"
)

// AgentDetector adapts core.Agent — the paper's CUSUM decision rule —
// to the Detector interface. Each closed period goes through the same
// EndPeriod the record-level path uses, so pipeline output is
// bit-identical to Agent.ProcessTrace (the ProcessCounts equivalence).
type AgentDetector struct {
	agent *core.Agent
}

// NewAgentDetector builds a fresh CUSUM agent detector.
func NewAgentDetector(cfg core.Config) (*AgentDetector, error) {
	a, err := core.NewAgent(cfg)
	if err != nil {
		return nil, err
	}
	return &AgentDetector{agent: a}, nil
}

// WrapAgent adapts an existing agent — typically one restored from a
// snapshot, whose report history becomes the resume offset.
func WrapAgent(a *core.Agent) *AgentDetector {
	return &AgentDetector{agent: a}
}

// Agent exposes the wrapped agent for snapshotting.
func (d *AgentDetector) Agent() *core.Agent { return d.agent }

// Period folds one closed period through the agent.
func (d *AgentDetector) Period(p Period) core.Report {
	return d.agent.LoadPeriod(p.Out, p.In, p.End)
}

// Periods returns the resume offset.
func (d *AgentDetector) Periods() int { return len(d.agent.Reports()) }

// Reports returns the agent's period reports.
func (d *AgentDetector) Reports() []core.Report { return d.agent.Reports() }

// Alarmed reports the latched alarm.
func (d *AgentDetector) Alarmed() bool { return d.agent.Alarmed() }

// FirstAlarm returns the first alarm, or nil.
func (d *AgentDetector) FirstAlarm() *core.Alarm { return d.agent.FirstAlarm() }

// KBar returns the EWMA traffic baseline.
func (d *AgentDetector) KBar() float64 { return d.agent.KBar() }

// Name identifies the paper's decision rule.
func (d *AgentDetector) Name() string { return "syndog-cusum" }

// baselineDetector adapts an internal/detect per-observation baseline
// to the per-period Detector interface. Baselines keep no K̄ and no yn
// statistic; their reports carry only the counts and the decision.
type baselineDetector struct {
	det     detect.Detector
	reports []core.Report
	alarm   *core.Alarm
}

// WrapBaseline adapts a detect baseline. The ablation experiment uses
// this directly so its table stays bit-identical to the pre-pipeline
// implementation.
func WrapBaseline(d detect.Detector) Detector {
	return &baselineDetector{det: d}
}

func (d *baselineDetector) Period(p Period) core.Report {
	alarmed := d.det.Observe(detect.Observation{
		OutSYN:   float64(p.Out.SYN),
		InSYNACK: float64(p.In.SYNACK),
	})
	r := core.Report{
		Index:    len(d.reports),
		End:      p.End,
		OutSYN:   p.Out.SYN,
		InSYNACK: p.In.SYNACK,
		Alarmed:  alarmed,
	}
	d.reports = append(d.reports, r)
	if alarmed && d.alarm == nil {
		d.alarm = &core.Alarm{Period: r.Index, At: p.End}
	}
	return r
}

func (d *baselineDetector) Periods() int { return len(d.reports) }

func (d *baselineDetector) Reports() []core.Report { return d.reports }

func (d *baselineDetector) Alarmed() bool { return d.alarm != nil }

func (d *baselineDetector) FirstAlarm() *core.Alarm {
	if d.alarm == nil {
		return nil
	}
	al := *d.alarm
	return &al
}

func (d *baselineDetector) KBar() float64 { return 0 }

func (d *baselineDetector) Name() string { return d.det.Name() }

// DetectorConfig parameterizes NewDetector. Agent configures the
// CUSUM detector; the remaining fields configure the baselines and
// default to the ablation experiment's settings.
type DetectorConfig struct {
	// Agent configures the syndog-cusum detector.
	Agent core.Config
	// StaticLimit is the static-threshold alarm level in outgoing SYNs
	// per period (default 250 — 2.5× the Auckland K̄ of 100).
	StaticLimit float64
	// Ratio and RatioFloor configure syn-synack-ratio (defaults 2, 1).
	Ratio      float64
	RatioFloor float64
	// EWMAAlpha, EWMASigma and EWMAWarmup configure adaptive-ewma
	// (defaults 0.9, 6, 10).
	EWMAAlpha  float64
	EWMASigma  float64
	EWMAWarmup int
}

func (c *DetectorConfig) applyDefaults() {
	if c.StaticLimit == 0 {
		c.StaticLimit = 250
	}
	if c.Ratio == 0 {
		c.Ratio = 2
	}
	if c.RatioFloor == 0 {
		c.RatioFloor = 1
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.9
	}
	if c.EWMASigma == 0 {
		c.EWMASigma = 6
	}
	if c.EWMAWarmup == 0 {
		c.EWMAWarmup = 10
	}
}

// DetectorNames lists the selectable decision rules, the paper's
// CUSUM first.
func DetectorNames() []string {
	return []string{"syndog-cusum", "static-threshold", "syn-synack-ratio", "adaptive-ewma"}
}

// NewDetector builds a detector by name — the -detector flag's
// backend. "syndog-cusum" is the paper's agent; the rest are the
// comparison baselines from internal/detect.
func NewDetector(name string, cfg DetectorConfig) (Detector, error) {
	cfg.applyDefaults()
	switch name {
	case "syndog-cusum", "":
		return NewAgentDetector(cfg.Agent)
	case "static-threshold":
		d, err := detect.NewStaticThreshold(cfg.StaticLimit)
		if err != nil {
			return nil, err
		}
		return WrapBaseline(d), nil
	case "syn-synack-ratio":
		d, err := detect.NewRatioDetector(cfg.Ratio, cfg.RatioFloor)
		if err != nil {
			return nil, err
		}
		return WrapBaseline(d), nil
	case "adaptive-ewma":
		d, err := detect.NewAdaptiveEWMA(cfg.EWMAAlpha, cfg.EWMASigma, cfg.EWMAWarmup)
		if err != nil {
			return nil, err
		}
		return WrapBaseline(d), nil
	default:
		return nil, fmt.Errorf("ingest: unknown detector %q (have %v)", name, DetectorNames())
	}
}

// ReplayCounts drives a detector straight from aggregated per-period
// counts — the counts fast path expressed on the unified interface.
// Like Agent.ProcessCounts it is resume-aware: the detector's existing
// period count is skipped.
func ReplayCounts(det Detector, pc *trace.PeriodCounts) error {
	if pc == nil || pc.Periods() == 0 {
		return fmt.Errorf("ingest: no complete periods in counts")
	}
	if len(pc.InSYNACK) != len(pc.OutSYN) {
		return fmt.Errorf("ingest: period counts misaligned (%d SYN vs %d SYN/ACK periods)",
			len(pc.OutSYN), len(pc.InSYNACK))
	}
	for i := det.Periods(); i < pc.Periods(); i++ {
		out, err := countAsUint(pc.OutSYN[i])
		if err != nil {
			return fmt.Errorf("ingest: OutSYN[%d]: %w", i, err)
		}
		in, err := countAsUint(pc.InSYNACK[i])
		if err != nil {
			return fmt.Errorf("ingest: InSYNACK[%d]: %w", i, err)
		}
		det.Period(Period{
			Index: i,
			End:   pc.T0 * time.Duration(i+1),
			Out:   core.PeriodCounts{SYN: out},
			In:    core.PeriodCounts{SYNACK: in},
		})
	}
	return nil
}

// countAsUint mirrors core's conversion guard: aggregated counts are
// tallies, so anything negative, fractional, non-finite, or beyond
// float64's exact-integer range is corruption, not a count.
func countAsUint(v float64) (uint64, error) {
	if !(v >= 0) || v != math.Trunc(v) || v > 1<<53 {
		return 0, fmt.Errorf("invalid period count %v", v)
	}
	return uint64(v), nil
}
