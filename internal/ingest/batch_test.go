package ingest

import (
	"fmt"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

// batchChunkRecords builds one chunk of keyable records that all share
// a timestamp inside the current period, so feeding the chunk any
// number of times never closes a period — the pure steady-state path.
func batchChunkRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		src := netip.AddrFrom4([4]byte{130, 216, byte(i % 7), byte(i)})
		dst := netip.AddrFrom4([4]byte{11, 0, 0, byte(i)})
		recs[i] = trace.Record{
			Ts:   10 * time.Second,
			Kind: packet.KindSYN,
			Dir:  trace.DirOut,
			Src:  src,
			Dst:  dst,
		}
		if i%3 == 0 {
			recs[i].Kind = packet.KindSYNACK
			recs[i].Dir = trace.DirIn
			recs[i].Src, recs[i].Dst = dst, src
		}
	}
	return recs
}

// TestBatchPathAllocs pins the batch pipeline's zero-allocation
// contract end to end: arena Get/Put per chunk, FeedBatch through the
// aggregator, and the keyed tracker's batch tap (multi-shard, so the
// per-shard grouping scratch is exercised) must allocate nothing once
// warm.
func TestBatchPathAllocs(t *testing.T) {
	recs := batchChunkRecords(DefaultChunk)
	det, err := NewAgentDetector(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := sourcetrack.New(sourcetrack.Config{
		KeyBits: 24,
		Shards:  2,
		Agent:   core.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(20*time.Second, time.Hour, det, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg.SetTap(tracker)
	arena := NewArena(DefaultChunk)

	feed := func() {
		buf := arena.Get()
		n := copy(buf, recs)
		if err := agg.FeedBatch(buf[:n]); err != nil {
			t.Fatal(err)
		}
		arena.Put(buf)
	}
	// Warm-up: admit the keys, grow the tracker's grouping scratch and
	// seed the arena's pool.
	feed()

	allocs := testing.AllocsPerRun(10, feed)
	if allocs != 0 {
		t.Errorf("steady-state batch feed allocated %.1f times per %d-record chunk, want 0",
			allocs, len(recs))
	}
}

// TestChanSourceDropMode pins the backpressure-shedding contract: a
// full drop-mode buffer sheds and counts instead of blocking, and the
// blocking constructor never drops.
func TestChanSourceDropMode(t *testing.T) {
	s := NewChanSourceDrop(2)
	for i := 0; i < 5; i++ {
		s.Send(trace.Record{Ts: time.Duration(i)})
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3 (buffer of 2, 5 sends)", got)
	}
	s.CloseSend()
	var buf [8]trace.Record
	n, err := s.NextBatch(buf[:])
	if n != 2 {
		t.Errorf("NextBatch kept %d records, want the 2 buffered", n)
	}
	if err == nil {
		// EOF may arrive with the data (EOF-mid-chunk) or on the next call.
		_, err = s.NextBatch(buf[:])
	}
	if err != io.EOF {
		t.Errorf("drained drop source reported %v, want io.EOF", err)
	}

	if NewChanSource(1).Dropped() != 0 {
		t.Error("blocking source reports drops")
	}
	// The DropCounter assertion the daemon relies on.
	var src Source = s
	if _, ok := src.(DropCounter); !ok {
		t.Error("ChanSource does not implement DropCounter")
	}
}

// recordOnlyTap hides a tracker's RecordBatch so the aggregator is
// forced onto the per-record tap path — the fuzz reference side.
type recordOnlyTap struct{ tk *sourcetrack.Tracker }

func (rt recordOnlyTap) Record(r trace.Record)                    { rt.tk.Record(r) }
func (rt recordOnlyTap) ClosePeriod(index int, end time.Duration) { rt.tk.ClosePeriod(index, end) }

// fuzzRecords decodes an arbitrary byte string into a record stream:
// 4 bytes per record (signed ts delta in 100ms steps, kind, dir, host
// byte). Deliberately unclamped — negative and out-of-order timestamps
// must drive both paths into the same error at the same record.
func fuzzRecords(data []byte) []trace.Record {
	recs := make([]trace.Record, 0, len(data)/4)
	ts := time.Duration(0)
	for i := 0; i+4 <= len(data); i += 4 {
		ts += time.Duration(int8(data[i])) * 100 * time.Millisecond
		kind := packet.Kind(data[i+1] % 6)
		dir := trace.DirOut
		if data[i+2]%2 == 1 {
			dir = trace.DirIn
		}
		h := data[i+3]
		src := netip.AddrFrom4([4]byte{130, 216, h, 1})
		dst := netip.AddrFrom4([4]byte{11, 0, 0, h})
		if dir == trace.DirIn {
			src, dst = dst, src
		}
		recs = append(recs, trace.Record{
			Ts: ts, Kind: kind, Dir: dir,
			Src: src, Dst: dst, SrcPort: 40000, DstPort: 80,
		})
	}
	return recs
}

func newFuzzTracker(t *testing.T) *sourcetrack.Tracker {
	t.Helper()
	tk, err := sourcetrack.New(sourcetrack.Config{
		KeyBits:    24,
		MaxSources: 8, // tiny, so eviction churn is in scope
		Shards:     1,
		Agent:      core.Config{T0: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

// FuzzBatchMatchesRecordPath is the batch pipeline's equivalence
// oracle: over arbitrary record streams (including invalid ones) and
// arbitrary chunk sizes (including 1 and EOF-mid-chunk), the chunked
// path — NextBatch through an arena into FeedBatch, keyed tracker on
// the batch tap — must return the same error, the same period reports
// and the same keyed tracker state as the record-at-a-time reference.
func FuzzBatchMatchesRecordPath(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{10, 1, 0, 1, 10, 2, 1, 1, 10, 1, 0, 2}, uint8(1))
	f.Add([]byte{100, 1, 0, 3, 0, 2, 1, 3, 50, 3, 0, 4, 50, 1, 0, 5}, uint8(3))
	f.Add([]byte{255, 1, 0, 1}, uint8(7))                             // negative delta: out-of-order/negative ts
	f.Add([]byte{127, 1, 0, 1, 127, 1, 0, 1, 127, 1, 0, 1}, uint8(2)) // past span
	f.Fuzz(func(t *testing.T, data []byte, chunkByte uint8) {
		recs := fuzzRecords(data)
		const t0 = time.Second
		span := 8 * time.Second
		chunk := int(chunkByte%32) + 1

		// Reference: record-at-a-time Feed with the per-record tap.
		det1, err := NewAgentDetector(core.Config{T0: t0})
		if err != nil {
			t.Fatal(err)
		}
		tk1 := newFuzzTracker(t)
		agg1, err := NewAggregator(t0, span, det1, nil)
		if err != nil {
			t.Fatal(err)
		}
		agg1.SetTap(recordOnlyTap{tk1})
		var err1 error
		for _, r := range recs {
			if err1 = agg1.Feed(r); err1 != nil {
				break
			}
		}
		if err1 == nil {
			err1 = agg1.Finish(0)
		}

		// Batch path: a TraceSource streamed chunk-at-a-time (odd chunk
		// sizes go through the single-record adapter so both NextBatch
		// faces are covered), tracker on the batch tap.
		det2, err := NewAgentDetector(core.Config{T0: t0})
		if err != nil {
			t.Fatal(err)
		}
		tk2 := newFuzzTracker(t)
		agg2, err := NewAggregator(t0, span, det2, nil)
		if err != nil {
			t.Fatal(err)
		}
		agg2.SetTap(tk2)
		var bs BatchSource = NewTraceSource(&trace.Trace{Records: recs, Span: span})
		if chunk%2 == 1 {
			bs = &batchAdapter{src: NewTraceSource(&trace.Trace{Records: recs, Span: span})}
		}
		err2 := drain(bs, agg2, NewArena(chunk))
		if err2 == nil {
			err2 = agg2.Finish(0)
		}

		switch {
		case (err1 == nil) != (err2 == nil):
			t.Fatalf("error divergence: record path %v, batch path %v (chunk %d)", err1, err2, chunk)
		case err1 != nil && err1.Error() != err2.Error():
			t.Fatalf("different errors:\n record %v\n batch  %v (chunk %d)", err1, err2, chunk)
		}
		if agg1.Records() != agg2.Records() || agg1.Skipped() != agg2.Skipped() {
			t.Fatalf("volume divergence: record %d/%d, batch %d/%d",
				agg1.Records(), agg1.Skipped(), agg2.Records(), agg2.Skipped())
		}
		r1, r2 := det1.Reports(), det2.Reports()
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("report divergence (chunk %d):\n record %+v\n batch  %+v", chunk, r1, r2)
		}
		v1, v2 := tk1.View(0), tk2.View(0)
		if !reflect.DeepEqual(v1, v2) {
			t.Fatalf("keyed state divergence (chunk %d):\n record %+v\n batch  %+v", chunk, v1, v2)
		}
	})
}

// TestBatchMatchesRecordPathSeeds replays the fuzz seeds (plus a real
// flood trace at several chunk sizes) deterministically, so the
// equivalence holds in plain `go test` runs too.
func TestBatchMatchesRecordPathSeeds(t *testing.T) {
	tr := testTrace(t)
	want := processTraceReports(t, tr)
	for _, chunk := range []int{1, 2, 7, 64, DefaultChunk, 1 << 15} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			det, err := NewAgentDetector(core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			p := &Pipeline{
				Source:   NewTraceSource(tr),
				Detector: det,
				T0:       20 * time.Second,
				Chunk:    chunk,
				Arena:    NewArena(chunk),
			}
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			compareReports(t, det.Reports(), want)
		})
	}
}
