// Package ingest defines the layered streaming pipeline the paper's
// Figure 2 describes: a Source yields classified packet records one at
// a time, the Aggregator folds them into per-period counts, and a
// Detector turns each closed period into a detection decision. Every
// binary and experiment constructs the same pipeline with different
// sources and detectors:
//
//	Source → (Classify) → Aggregate → Detect → Sink
//
// Classification happens inside the packet-backed sources (pcap,
// iptrace, live taps) via internal/packet; record-backed sources
// (binary, CSV, in-memory traces) carry the kind already. The whole
// path is O(1) in trace length: nothing past the current record and
// the current period's four counters is retained, which is what lets
// the daemon ingest captures larger than memory.
//
// The pipeline is bit-identical to core.Agent.ProcessTrace: the
// Aggregator mirrors its skip/boundary/tail logic exactly, and the
// CUSUM detector folds periods through the same EndPeriod the record
// path uses (see the ProcessCounts equivalence note in internal/core).
package ingest

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Source is a pull iterator over classified packet records. Next
// returns io.EOF at a clean end of stream. Sources that wrap files
// release them in Close; Close is safe to call after an error.
type Source interface {
	Next() (trace.Record, error)
	Close() error
}

// SpanSource is implemented by sources that know the capture span —
// either up front (binary header, in-memory trace) or only once the
// stream is exhausted (pcap, iptrace). A zero return means "not yet
// known"; the pipeline re-queries at EOF.
type SpanSource interface {
	Span() time.Duration
}

// NamedSource is implemented by sources whose container carries a
// trace name (binary header, CSV header line). Like the span, the name
// may only be final once the stream is exhausted.
type NamedSource interface {
	Name() string
}

// Period is one closed observation period: per-kind packet counts for
// each direction plus the period's index and end time.
type Period struct {
	Index int
	End   time.Duration
	Out   core.PeriodCounts
	In    core.PeriodCounts
}

// Detector folds closed periods into a detection decision. It is the
// unified face of core.Agent's CUSUM and the internal/detect
// baselines.
//
// Periods is the resume offset: a detector restored from a snapshot
// already holds that many closed periods, and the Aggregator skips the
// matching leading records — this is what preserves the daemon's
// byte-identical restart guarantee across the streaming path.
type Detector interface {
	// Period folds one closed observation period and returns its
	// report. Implementations latch their alarm internally.
	Period(p Period) core.Report
	// Periods returns how many periods have been folded so far.
	Periods() int
	// Reports returns all period reports so far (the implementation's
	// backing store; callers must not modify it).
	Reports() []core.Report
	// Alarmed reports whether the latched alarm has fired.
	Alarmed() bool
	// FirstAlarm returns the first alarm, or nil if none fired.
	FirstAlarm() *core.Alarm
	// KBar returns the current traffic baseline, 0 for detectors that
	// keep none.
	KBar() float64
	// Name identifies the decision rule.
	Name() string
}

// Sink receives each period report as it closes. Nil sinks are
// allowed.
type Sink func(core.Report)

// RecordTap observes the records the aggregator counts plus every
// period close — the keyed demux hook. The aggregator guarantees the
// tap sees exactly the records the aggregate detector's counts came
// from: resume-skipped and past-span records never reach it, and
// ClosePeriod fires at the same boundaries the detector folds.
// internal/sourcetrack implements it; ingest stays detector-agnostic.
type RecordTap interface {
	Record(r trace.Record)
	ClosePeriod(index int, end time.Duration)
}

// BatchRecordTap is the chunked upgrade of RecordTap: taps that
// implement it receive each counted run of records in one call instead
// of one call per record, in the same order Record would have seen
// them. FeedBatch prefers it when present; Feed still delivers records
// one at a time.
type BatchRecordTap interface {
	RecordTap
	RecordBatch(recs []trace.Record)
}

// Aggregator is the push-side period folder: Feed it time-ordered
// records and it counts them into the current period, closing each
// period boundary through the Detector. Its skip/boundary/tail
// behavior mirrors core.Agent.ProcessTrace exactly, so the two paths
// produce bit-identical reports.
type Aggregator struct {
	t0   time.Duration
	det  Detector
	sink Sink
	tap  RecordTap

	span     time.Duration // 0 while unknown
	periods  int           // span / t0; -1 while span unknown
	done     int
	next     time.Duration  // end of the current open period
	resumed  time.Duration  // records before this were counted pre-snapshot
	batchTap BatchRecordTap // tap's chunked face, when it has one

	out, in core.PeriodCounts

	lastTs    time.Duration
	sawRecord bool
	records   int
	skipped   int
}

// NewAggregator builds an aggregator folding periods of t0 into det.
// span may be 0 when the source only learns it at EOF (pcap); pass the
// final value to Finish instead. The detector's existing period count
// becomes the resume offset.
func NewAggregator(t0 time.Duration, span time.Duration, det Detector, sink Sink) (*Aggregator, error) {
	if t0 <= 0 {
		return nil, errors.New("ingest: non-positive observation period")
	}
	if span < 0 {
		return nil, errors.New("ingest: negative span")
	}
	a := &Aggregator{
		t0:      t0,
		det:     det,
		sink:    sink,
		periods: -1,
		done:    det.Periods(),
	}
	a.resumed = t0 * time.Duration(a.done)
	a.next = a.resumed + t0
	if span > 0 {
		a.span = span
		a.periods = int(span / t0)
	}
	return a, nil
}

// Feed counts one record, closing any period boundaries it crosses.
// Records must arrive in time order; records inside already-resumed
// periods are skipped, and records past the last complete period are
// ignored (the trailing partial period is discarded, mirroring
// trace.Aggregate).
func (a *Aggregator) Feed(r trace.Record) error {
	if r.Ts < 0 {
		return fmt.Errorf("ingest: record with negative timestamp %v", r.Ts)
	}
	if a.sawRecord && r.Ts < a.lastTs {
		return fmt.Errorf("ingest: record at %v out of order (previous at %v)", r.Ts, a.lastTs)
	}
	if a.span > 0 && r.Ts >= a.span {
		return fmt.Errorf("ingest: record at %v outside span %v", r.Ts, a.span)
	}
	a.lastTs, a.sawRecord = r.Ts, true
	a.records++
	if r.Ts < a.resumed {
		a.skipped++
		return nil
	}
	for r.Ts >= a.next && (a.periods < 0 || a.done < a.periods) {
		a.closePeriod()
	}
	if a.periods >= 0 && a.done >= a.periods {
		return nil // past the last complete period
	}
	a.count(r)
	if a.tap != nil {
		a.tap.Record(r)
	}
	return nil
}

// SetTap attaches a keyed demux tap. It must be set before the first
// Feed; the tap then sees every counted record and period close.
func (a *Aggregator) SetTap(tap RecordTap) {
	a.tap = tap
	a.batchTap, _ = tap.(BatchRecordTap)
}

// FeedBatch counts a chunk of records, bit-identical to calling Feed
// on each in order — same counts, same boundary closes, same tap
// sequence, same error at the same record — but with the per-record
// interface dispatch amortized away: records are processed in runs
// that share one boundary/span/resume decision, so the inner loop is a
// timestamp-order check and a counter increment. On error, records
// before the offending one are fully counted, exactly as the
// single-record path leaves them.
func (a *Aggregator) FeedBatch(recs []trace.Record) error {
	i, n := 0, len(recs)
	for i < n {
		r := &recs[i]
		// Head-of-run validation: the same checks Feed applies to every
		// record. Records inside the run are covered by the run's scan
		// invariant (non-decreasing and below the open period's end).
		if r.Ts < 0 {
			return fmt.Errorf("ingest: record with negative timestamp %v", r.Ts)
		}
		if a.sawRecord && r.Ts < a.lastTs {
			return fmt.Errorf("ingest: record at %v out of order (previous at %v)", r.Ts, a.lastTs)
		}
		if a.span > 0 && r.Ts >= a.span {
			return fmt.Errorf("ingest: record at %v outside span %v", r.Ts, a.span)
		}
		if r.Ts < a.resumed {
			// Resume-skip: counted before the snapshot was taken.
			a.lastTs, a.sawRecord = r.Ts, true
			a.records++
			a.skipped++
			i++
			continue
		}
		for r.Ts >= a.next && (a.periods < 0 || a.done < a.periods) {
			a.closePeriod()
		}
		if a.periods >= 0 && a.done >= a.periods {
			// Past the last complete period: validated and tallied but
			// never counted, mirroring Feed's early return.
			a.lastTs, a.sawRecord = r.Ts, true
			a.records++
			i++
			continue
		}
		// The run: every following record that keeps time order and
		// stays inside the open period. Within the run no record can be
		// negative (>= head), out of span (Ts < next <= span), in a
		// resumed period (>= head >= resumed), or across a boundary —
		// one check per chunk segment instead of four per record.
		next, prev := a.next, r.Ts
		j := i + 1
		for j < n {
			ts := recs[j].Ts
			if ts < prev || ts >= next {
				break
			}
			prev = ts
			j++
		}
		for k := i; k < j; k++ {
			a.count(recs[k])
		}
		a.lastTs, a.sawRecord = prev, true
		a.records += j - i
		if a.batchTap != nil {
			a.batchTap.RecordBatch(recs[i:j])
		} else if a.tap != nil {
			for k := i; k < j; k++ {
				a.tap.Record(recs[k])
			}
		}
		i = j
	}
	return nil
}

// count adds one record to the open period's counters. KindOther and
// KindNotTCP records are ignored, exactly as Sniffer.Count tallies
// nothing observable for them.
func (a *Aggregator) count(r trace.Record) {
	pc := &a.out
	if r.Dir == trace.DirIn {
		pc = &a.in
	}
	switch r.Kind {
	case packet.KindSYN:
		pc.SYN++
	case packet.KindSYNACK:
		pc.SYNACK++
	case packet.KindFIN:
		pc.FIN++
	case packet.KindRST:
		pc.RST++
	}
}

// closePeriod folds the open period into the detector and starts the
// next one.
func (a *Aggregator) closePeriod() {
	p := Period{Index: a.done, End: a.next, Out: a.out, In: a.in}
	a.out, a.in = core.PeriodCounts{}, core.PeriodCounts{}
	rep := a.det.Period(p)
	if a.sink != nil {
		a.sink(rep)
	}
	if a.tap != nil {
		a.tap.ClosePeriod(p.Index, p.End)
	}
	a.next += a.t0
	a.done++
}

// ClosePeriod forces the open period shut at its boundary regardless
// of record arrival — the paced daemon closes periods on wall-clock
// deadlines, not on the first record of the next period.
func (a *Aggregator) ClosePeriod() {
	a.closePeriod()
}

// NextBoundary returns the end time of the currently open period.
func (a *Aggregator) NextBoundary() time.Duration { return a.next }

// Finish fires the trailing empty periods out to span and validates
// that no record fell beyond it. Pass the span learned at EOF; 0 means
// the aggregator's own (construction-time) span, and having neither is
// an error.
func (a *Aggregator) Finish(span time.Duration) error {
	if span == 0 {
		span = a.span
	}
	if span <= 0 {
		return errors.New("ingest: source has no span")
	}
	if a.span > 0 && span != a.span {
		return fmt.Errorf("ingest: span changed from %v to %v", a.span, span)
	}
	if a.sawRecord && a.lastTs >= span {
		return fmt.Errorf("ingest: record at %v outside span %v", a.lastTs, span)
	}
	periods := int(span / a.t0)
	if periods == 0 {
		return fmt.Errorf("ingest: span %v shorter than one period %v", span, a.t0)
	}
	for a.done < periods {
		a.closePeriod()
	}
	return nil
}

// Records returns how many records were fed (counted plus skipped).
func (a *Aggregator) Records() int { return a.records }

// Skipped returns how many records fell inside already-resumed periods.
func (a *Aggregator) Skipped() int { return a.skipped }

// Done returns how many periods have closed, including resumed ones.
func (a *Aggregator) Done() int { return a.done }

// Pipeline wires a Source to a Detector through an Aggregator and
// runs it to completion. This is the one construction every binary
// shares; only Source and Detector vary.
type Pipeline struct {
	Source   Source
	Detector Detector
	// T0 is the observation period.
	T0 time.Duration
	// Span overrides the source's span. Leave 0 to take it from the
	// source (required when the source is not a SpanSource).
	Span time.Duration
	// Sink, if set, receives each period report as it closes.
	Sink Sink
	// Tap, if set, receives every counted record and period close —
	// the keyed source-attribution demux rides here.
	Tap RecordTap
	// Chunk is the batch size in records: 0 picks DefaultChunk, a
	// negative value selects the single-record compatibility loop
	// (one Source.Next and one Feed per record). Both paths are
	// bit-identical; the batch path is simply faster.
	Chunk int
	// Arena, if set, supplies the run's chunk buffer; callers running
	// many pipelines share one arena so chunks recycle across runs.
	// Nil allocates one chunk for the run.
	Arena *Arena
}

// Run drains the source through the aggregator and finishes the tail.
// The source is not closed; the caller owns it.
//
// Records move in chunks: the source's native NextBatch (or the
// single-record adapter) fills an arena chunk, and the aggregator
// folds each chunk with one boundary decision per run of records.
// Chunk < 0 falls back to the record-at-a-time loop.
func (p *Pipeline) Run() error {
	span := p.Span
	if span == 0 {
		if ss, ok := p.Source.(SpanSource); ok {
			span = ss.Span()
		}
	}
	agg, err := NewAggregator(p.T0, span, p.Detector, p.Sink)
	if err != nil {
		return err
	}
	if p.Tap != nil {
		agg.SetTap(p.Tap)
	}
	if p.Chunk < 0 {
		if err := p.runSingle(agg); err != nil {
			return err
		}
	} else {
		arena := p.Arena
		if arena == nil || arena.Size() != p.chunkSize() {
			arena = NewArena(p.chunkSize())
		}
		if err := drain(AsBatch(p.Source), agg, arena); err != nil {
			return err
		}
	}
	finalSpan := time.Duration(0)
	if span == 0 {
		if ss, ok := p.Source.(SpanSource); ok {
			finalSpan = ss.Span()
		}
	}
	return agg.Finish(finalSpan)
}

func (p *Pipeline) chunkSize() int {
	if p.Chunk > 0 {
		return p.Chunk
	}
	return DefaultChunk
}

// runSingle is the legacy record-at-a-time loop, kept as the
// compatibility path (and as the reference the equivalence suites pin
// the batch path against).
func (p *Pipeline) runSingle(agg *Aggregator) error {
	for {
		r, err := p.Source.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := agg.Feed(r); err != nil {
			return err
		}
	}
}
