// Package ingest defines the layered streaming pipeline the paper's
// Figure 2 describes: a Source yields classified packet records one at
// a time, the Aggregator folds them into per-period counts, and a
// Detector turns each closed period into a detection decision. Every
// binary and experiment constructs the same pipeline with different
// sources and detectors:
//
//	Source → (Classify) → Aggregate → Detect → Sink
//
// Classification happens inside the packet-backed sources (pcap,
// iptrace, live taps) via internal/packet; record-backed sources
// (binary, CSV, in-memory traces) carry the kind already. The whole
// path is O(1) in trace length: nothing past the current record and
// the current period's four counters is retained, which is what lets
// the daemon ingest captures larger than memory.
//
// The pipeline is bit-identical to core.Agent.ProcessTrace: the
// Aggregator mirrors its skip/boundary/tail logic exactly, and the
// CUSUM detector folds periods through the same EndPeriod the record
// path uses (see the ProcessCounts equivalence note in internal/core).
package ingest

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Source is a pull iterator over classified packet records. Next
// returns io.EOF at a clean end of stream. Sources that wrap files
// release them in Close; Close is safe to call after an error.
type Source interface {
	Next() (trace.Record, error)
	Close() error
}

// SpanSource is implemented by sources that know the capture span —
// either up front (binary header, in-memory trace) or only once the
// stream is exhausted (pcap, iptrace). A zero return means "not yet
// known"; the pipeline re-queries at EOF.
type SpanSource interface {
	Span() time.Duration
}

// NamedSource is implemented by sources whose container carries a
// trace name (binary header, CSV header line). Like the span, the name
// may only be final once the stream is exhausted.
type NamedSource interface {
	Name() string
}

// Period is one closed observation period: per-kind packet counts for
// each direction plus the period's index and end time.
type Period struct {
	Index int
	End   time.Duration
	Out   core.PeriodCounts
	In    core.PeriodCounts
}

// Detector folds closed periods into a detection decision. It is the
// unified face of core.Agent's CUSUM and the internal/detect
// baselines.
//
// Periods is the resume offset: a detector restored from a snapshot
// already holds that many closed periods, and the Aggregator skips the
// matching leading records — this is what preserves the daemon's
// byte-identical restart guarantee across the streaming path.
type Detector interface {
	// Period folds one closed observation period and returns its
	// report. Implementations latch their alarm internally.
	Period(p Period) core.Report
	// Periods returns how many periods have been folded so far.
	Periods() int
	// Reports returns all period reports so far (the implementation's
	// backing store; callers must not modify it).
	Reports() []core.Report
	// Alarmed reports whether the latched alarm has fired.
	Alarmed() bool
	// FirstAlarm returns the first alarm, or nil if none fired.
	FirstAlarm() *core.Alarm
	// KBar returns the current traffic baseline, 0 for detectors that
	// keep none.
	KBar() float64
	// Name identifies the decision rule.
	Name() string
}

// Sink receives each period report as it closes. Nil sinks are
// allowed.
type Sink func(core.Report)

// RecordTap observes the records the aggregator counts plus every
// period close — the keyed demux hook. The aggregator guarantees the
// tap sees exactly the records the aggregate detector's counts came
// from: resume-skipped and past-span records never reach it, and
// ClosePeriod fires at the same boundaries the detector folds.
// internal/sourcetrack implements it; ingest stays detector-agnostic.
type RecordTap interface {
	Record(r trace.Record)
	ClosePeriod(index int, end time.Duration)
}

// Aggregator is the push-side period folder: Feed it time-ordered
// records and it counts them into the current period, closing each
// period boundary through the Detector. Its skip/boundary/tail
// behavior mirrors core.Agent.ProcessTrace exactly, so the two paths
// produce bit-identical reports.
type Aggregator struct {
	t0   time.Duration
	det  Detector
	sink Sink
	tap  RecordTap

	span    time.Duration // 0 while unknown
	periods int           // span / t0; -1 while span unknown
	done    int
	next    time.Duration // end of the current open period
	resumed time.Duration // records before this were counted pre-snapshot

	out, in core.PeriodCounts

	lastTs    time.Duration
	sawRecord bool
	records   int
	skipped   int
}

// NewAggregator builds an aggregator folding periods of t0 into det.
// span may be 0 when the source only learns it at EOF (pcap); pass the
// final value to Finish instead. The detector's existing period count
// becomes the resume offset.
func NewAggregator(t0 time.Duration, span time.Duration, det Detector, sink Sink) (*Aggregator, error) {
	if t0 <= 0 {
		return nil, errors.New("ingest: non-positive observation period")
	}
	if span < 0 {
		return nil, errors.New("ingest: negative span")
	}
	a := &Aggregator{
		t0:      t0,
		det:     det,
		sink:    sink,
		periods: -1,
		done:    det.Periods(),
	}
	a.resumed = t0 * time.Duration(a.done)
	a.next = a.resumed + t0
	if span > 0 {
		a.span = span
		a.periods = int(span / t0)
	}
	return a, nil
}

// Feed counts one record, closing any period boundaries it crosses.
// Records must arrive in time order; records inside already-resumed
// periods are skipped, and records past the last complete period are
// ignored (the trailing partial period is discarded, mirroring
// trace.Aggregate).
func (a *Aggregator) Feed(r trace.Record) error {
	if r.Ts < 0 {
		return fmt.Errorf("ingest: record with negative timestamp %v", r.Ts)
	}
	if a.sawRecord && r.Ts < a.lastTs {
		return fmt.Errorf("ingest: record at %v out of order (previous at %v)", r.Ts, a.lastTs)
	}
	if a.span > 0 && r.Ts >= a.span {
		return fmt.Errorf("ingest: record at %v outside span %v", r.Ts, a.span)
	}
	a.lastTs, a.sawRecord = r.Ts, true
	a.records++
	if r.Ts < a.resumed {
		a.skipped++
		return nil
	}
	for r.Ts >= a.next && (a.periods < 0 || a.done < a.periods) {
		a.closePeriod()
	}
	if a.periods >= 0 && a.done >= a.periods {
		return nil // past the last complete period
	}
	a.count(r)
	if a.tap != nil {
		a.tap.Record(r)
	}
	return nil
}

// SetTap attaches a keyed demux tap. It must be set before the first
// Feed; the tap then sees every counted record and period close.
func (a *Aggregator) SetTap(tap RecordTap) { a.tap = tap }

// count adds one record to the open period's counters. KindOther and
// KindNotTCP records are ignored, exactly as Sniffer.Count tallies
// nothing observable for them.
func (a *Aggregator) count(r trace.Record) {
	pc := &a.out
	if r.Dir == trace.DirIn {
		pc = &a.in
	}
	switch r.Kind {
	case packet.KindSYN:
		pc.SYN++
	case packet.KindSYNACK:
		pc.SYNACK++
	case packet.KindFIN:
		pc.FIN++
	case packet.KindRST:
		pc.RST++
	}
}

// closePeriod folds the open period into the detector and starts the
// next one.
func (a *Aggregator) closePeriod() {
	p := Period{Index: a.done, End: a.next, Out: a.out, In: a.in}
	a.out, a.in = core.PeriodCounts{}, core.PeriodCounts{}
	rep := a.det.Period(p)
	if a.sink != nil {
		a.sink(rep)
	}
	if a.tap != nil {
		a.tap.ClosePeriod(p.Index, p.End)
	}
	a.next += a.t0
	a.done++
}

// ClosePeriod forces the open period shut at its boundary regardless
// of record arrival — the paced daemon closes periods on wall-clock
// deadlines, not on the first record of the next period.
func (a *Aggregator) ClosePeriod() {
	a.closePeriod()
}

// NextBoundary returns the end time of the currently open period.
func (a *Aggregator) NextBoundary() time.Duration { return a.next }

// Finish fires the trailing empty periods out to span and validates
// that no record fell beyond it. Pass the span learned at EOF; 0 means
// the aggregator's own (construction-time) span, and having neither is
// an error.
func (a *Aggregator) Finish(span time.Duration) error {
	if span == 0 {
		span = a.span
	}
	if span <= 0 {
		return errors.New("ingest: source has no span")
	}
	if a.span > 0 && span != a.span {
		return fmt.Errorf("ingest: span changed from %v to %v", a.span, span)
	}
	if a.sawRecord && a.lastTs >= span {
		return fmt.Errorf("ingest: record at %v outside span %v", a.lastTs, span)
	}
	periods := int(span / a.t0)
	if periods == 0 {
		return fmt.Errorf("ingest: span %v shorter than one period %v", span, a.t0)
	}
	for a.done < periods {
		a.closePeriod()
	}
	return nil
}

// Records returns how many records were fed (counted plus skipped).
func (a *Aggregator) Records() int { return a.records }

// Skipped returns how many records fell inside already-resumed periods.
func (a *Aggregator) Skipped() int { return a.skipped }

// Done returns how many periods have closed, including resumed ones.
func (a *Aggregator) Done() int { return a.done }

// Pipeline wires a Source to a Detector through an Aggregator and
// runs it to completion. This is the one construction every binary
// shares; only Source and Detector vary.
type Pipeline struct {
	Source   Source
	Detector Detector
	// T0 is the observation period.
	T0 time.Duration
	// Span overrides the source's span. Leave 0 to take it from the
	// source (required when the source is not a SpanSource).
	Span time.Duration
	// Sink, if set, receives each period report as it closes.
	Sink Sink
	// Tap, if set, receives every counted record and period close —
	// the keyed source-attribution demux rides here.
	Tap RecordTap
}

// Run drains the source through the aggregator and finishes the tail.
// The source is not closed; the caller owns it.
func (p *Pipeline) Run() error {
	span := p.Span
	if span == 0 {
		if ss, ok := p.Source.(SpanSource); ok {
			span = ss.Span()
		}
	}
	agg, err := NewAggregator(p.T0, span, p.Detector, p.Sink)
	if err != nil {
		return err
	}
	if p.Tap != nil {
		agg.SetTap(p.Tap)
	}
	for {
		r, err := p.Source.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := agg.Feed(r); err != nil {
			return err
		}
	}
	finalSpan := time.Duration(0)
	if span == 0 {
		if ss, ok := p.Source.(SpanSource); ok {
			finalSpan = ss.Span()
		}
	}
	return agg.Finish(finalSpan)
}
