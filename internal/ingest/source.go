package ingest

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/flood"
	"repro/internal/iptrace"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Info describes what a source knows about its container up front.
type Info struct {
	// Name is the trace name (header-carried or the file path).
	Name string
	// Span is the capture span; 0 when only known at EOF (pcap,
	// iptrace).
	Span time.Duration
	// Records is the record count; -1 when unknown up front.
	Records int
}

// TraceSource streams an in-memory trace — the adapter that keeps
// trace.Load-based callers (tcpdump import, generated traces) on the
// pipeline path.
type TraceSource struct {
	tr  *trace.Trace
	pos int
}

// NewTraceSource wraps an in-memory trace.
func NewTraceSource(tr *trace.Trace) *TraceSource {
	return &TraceSource{tr: tr}
}

// Next returns the next record.
func (s *TraceSource) Next() (trace.Record, error) {
	if s.pos >= len(s.tr.Records) {
		return trace.Record{}, io.EOF
	}
	r := s.tr.Records[s.pos]
	s.pos++
	return r, nil
}

// NextBatch copies up to len(buf) records into buf. For an in-memory
// trace a batch is a single copy, so the per-record cost of the batch
// pipeline over this source is pure memmove.
func (s *TraceSource) NextBatch(buf []trace.Record) (int, error) {
	if s.pos >= len(s.tr.Records) {
		return 0, io.EOF
	}
	n := copy(buf, s.tr.Records[s.pos:])
	s.pos += n
	if s.pos >= len(s.tr.Records) {
		return n, io.EOF
	}
	return n, nil
}

// Span returns the trace's declared span.
func (s *TraceSource) Span() time.Duration { return s.tr.Span }

// Name returns the trace's name.
func (s *TraceSource) Name() string { return s.tr.Name }

// Close implements Source.
func (s *TraceSource) Close() error { return nil }

// NewSyntheticSource generates a site profile trace and streams it —
// synthetic background traffic on the pipeline path.
func NewSyntheticSource(p trace.Profile, seed int64) (*TraceSource, error) {
	tr, err := trace.Generate(p, seed)
	if err != nil {
		return nil, err
	}
	return NewTraceSource(tr), nil
}

// NewFloodSource renders a flood as a stream of outbound spoofed SYNs.
func NewFloodSource(cfg flood.Config) (*TraceSource, error) {
	tr, err := flood.GenerateTrace(cfg)
	if err != nil {
		return nil, err
	}
	return NewTraceSource(tr), nil
}

// ChanSource is the channel-backed live source: a netsim router tap
// (or any producer goroutine) sends records while the pipeline
// consumes them. By default sends block once the buffer fills —
// natural backpressure against a slow consumer. In drop mode
// (NewChanSourceDrop) a full buffer sheds the record instead and
// counts it, the right policy for a live capture feed where blocking
// the capture path loses ground truth anyway; the count is surfaced
// through Dropped so the loss is never silent.
type ChanSource struct {
	ch      chan trace.Record
	drop    bool
	dropped atomic.Uint64
}

// NewChanSource builds a live source buffering up to buf records.
// Sends block when the buffer is full.
func NewChanSource(buf int) *ChanSource {
	return &ChanSource{ch: make(chan trace.Record, buf)}
}

// NewChanSourceDrop builds a live source buffering up to buf records
// that sheds (and counts) records instead of blocking when the buffer
// overruns.
func NewChanSourceDrop(buf int) *ChanSource {
	return &ChanSource{ch: make(chan trace.Record, buf), drop: true}
}

// Send delivers one record to the consumer. In drop mode a full
// buffer discards the record and bumps the drop counter instead of
// blocking.
func (s *ChanSource) Send(r trace.Record) {
	if s.drop {
		select {
		case s.ch <- r:
		default:
			s.dropped.Add(1)
		}
		return
	}
	s.ch <- r
}

// Dropped reports how many records Send has shed because the buffer
// was full. Always 0 outside drop mode. ChanSource implements
// DropCounter so the daemon can export the count in /metrics.
func (s *ChanSource) Dropped() uint64 { return s.dropped.Load() }

// CloseSend marks the end of the stream; the consuming pipeline's
// Next returns io.EOF once the buffer drains.
func (s *ChanSource) CloseSend() { close(s.ch) }

// Tap adapts the source to a netsim router tap, classifying each
// forwarded segment into a record — the live-capture edge of the
// pipeline.
func (s *ChanSource) Tap() netsim.Tap {
	return func(now time.Duration, dir netsim.Direction, seg *packet.Segment) {
		d := trace.DirIn
		if dir == netsim.Outbound {
			d = trace.DirOut
		}
		s.Send(trace.Record{
			Ts:      now,
			Kind:    seg.Kind(),
			Dir:     d,
			Src:     seg.IP.Src,
			Dst:     seg.IP.Dst,
			SrcPort: seg.TCP.SrcPort,
			DstPort: seg.TCP.DstPort,
		})
	}
}

// Next blocks for the next record; io.EOF after CloseSend drains.
func (s *ChanSource) Next() (trace.Record, error) {
	r, ok := <-s.ch
	if !ok {
		return trace.Record{}, io.EOF
	}
	return r, nil
}

// NextBatch blocks for the first record, then opportunistically drains
// whatever else is already buffered without blocking again — a busy
// feed fills whole chunks, an idle one degrades to one record per call
// with no added latency.
func (s *ChanSource) NextBatch(buf []trace.Record) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	r, ok := <-s.ch
	if !ok {
		return 0, io.EOF
	}
	buf[0] = r
	n := 1
	for n < len(buf) {
		select {
		case r, ok := <-s.ch:
			if !ok {
				return n, io.EOF
			}
			buf[n] = r
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Close implements Source. It does not close the send side; the
// producer owns that via CloseSend.
func (s *ChanSource) Close() error { return nil }

// pcapSource adapts trace.PcapStream to the Source interface, binding
// the stub prefix for direction inference and owning the file handle.
type pcapSource struct {
	s      *trace.PcapStream
	prefix netip.Prefix
	c      io.Closer
}

func (s *pcapSource) Next() (trace.Record, error) { return s.s.NextDir(s.prefix) }
func (s *pcapSource) Span() time.Duration         { return s.s.Span() }
func (s *pcapSource) Close() error                { return closeAll(s.c) }

// NextBatch runs the whole decode+classify loop inside trace.PcapStream
// — the native batch face of pcap ingest.
func (s *pcapSource) NextBatch(buf []trace.Record) (int, error) {
	return s.s.NextBatchDir(s.prefix, buf)
}

// IPTraceSource streams an iptrace capture, classifying each payload
// and taking direction from the record's tx flag — no stub prefix
// needed, the capture format carries direction natively.
type IPTraceSource struct {
	cr   *iptrace.CaptureReader
	c    io.Closer
	max  time.Duration
	seen bool
}

// NewIPTraceSource parses the capture magic and returns a source.
func NewIPTraceSource(r io.Reader) (*IPTraceSource, error) {
	cr, err := iptrace.NewCaptureReader(r)
	if err != nil {
		return nil, err
	}
	return &IPTraceSource{cr: cr}, nil
}

// Next returns the next classified TCP record.
func (s *IPTraceSource) Next() (trace.Record, error) {
	var seg packet.Segment
	for {
		p, err := s.cr.Next()
		if err != nil {
			return trace.Record{}, err
		}
		if packet.Classify(p.Data) == packet.KindNotTCP {
			continue
		}
		if err := seg.Unmarshal(p.Data); err != nil {
			continue
		}
		dir := trace.DirIn
		if p.Tx {
			dir = trace.DirOut
		}
		if p.Ts > s.max || !s.seen {
			s.max = p.Ts
			s.seen = true
		}
		return trace.Record{
			Ts:      p.Ts,
			Kind:    seg.Kind(),
			Dir:     dir,
			Src:     seg.IP.Src,
			Dst:     seg.IP.Dst,
			SrcPort: seg.TCP.SrcPort,
			DstPort: seg.TCP.DstPort,
		}, nil
	}
}

// NextBatch decodes up to len(buf) classified records into buf.
func (s *IPTraceSource) NextBatch(buf []trace.Record) (int, error) {
	n := 0
	for n < len(buf) {
		r, err := s.Next()
		if err != nil {
			return n, err
		}
		buf[n] = r
		n++
	}
	return n, nil
}

// Span returns lastTs+1 once the stream is exhausted, 0 before.
func (s *IPTraceSource) Span() time.Duration {
	if !s.seen {
		return 0
	}
	return s.max + 1
}

// Close implements Source.
func (s *IPTraceSource) Close() error { return closeAll(s.c) }

// binarySource and csvSource bind the trace streams to their file
// handles.
type binarySource struct {
	*trace.BinaryStream
	c io.Closer
}

func (s *binarySource) Close() error { return closeAll(s.c) }

type csvSource struct {
	*trace.CSVStream
	c io.Closer
}

func (s *csvSource) Close() error { return closeAll(s.c) }

// Open opens a capture file as a streaming Source, picking the codec
// from the extension with the same rules as trace.Load plus the
// iptrace capture format:
//
//	.trace/.bin  binary (streamed)
//	.csv         text (streamed)
//	.pcap        libpcap (streamed; needs stubPrefix)
//	.ipt         iptrace 2.0 capture (streamed; direction from tx flag)
//	.txt/.dump   tcpdump text (materialized — needs sorting; stubPrefix)
//	any + .gz    gzip-wrapped version of the inner extension
//
// The returned Info reports what is known up front; zero Span means
// the source learns it at EOF. The caller must Close the source.
func Open(path string, stubPrefix netip.Prefix) (Source, Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Info{}, err
	}
	src, info, err := openReader(f, f, path, stubPrefix)
	if err != nil {
		f.Close()
		return nil, Info{}, err
	}
	return src, info, nil
}

// openReader builds the source for path's extension over r, with c
// owning the underlying handles.
func openReader(r io.Reader, c io.Closer, path string, stubPrefix netip.Prefix) (Source, Info, error) {
	name := path
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, Info{}, fmt.Errorf("ingest: gzip %s: %w", path, err)
		}
		r = gz
		c = multiCloser{gz, c}
		name = strings.TrimSuffix(path, ".gz")
	}

	switch {
	case strings.HasSuffix(name, ".csv"):
		return &csvSource{CSVStream: trace.NewCSVStream(r), c: c}, Info{Name: path, Records: -1}, nil
	case strings.HasSuffix(name, ".pcap"):
		if !stubPrefix.IsValid() {
			return nil, Info{}, fmt.Errorf("trace: %s needs a stub prefix for direction inference", path)
		}
		s, err := trace.NewPcapStream(r)
		if err != nil {
			return nil, Info{}, err
		}
		return &pcapSource{s: s, prefix: stubPrefix, c: c}, Info{Name: path, Records: -1}, nil
	case strings.HasSuffix(name, ".ipt"):
		s, err := NewIPTraceSource(r)
		if err != nil {
			return nil, Info{}, err
		}
		s.c = c
		return s, Info{Name: path, Records: -1}, nil
	case strings.HasSuffix(name, ".txt"), strings.HasSuffix(name, ".dump"):
		// tcpdump text needs a post-parse sort, so it materializes;
		// everything downstream still streams.
		if !stubPrefix.IsValid() {
			return nil, Info{}, fmt.Errorf("trace: %s needs a stub prefix for direction inference", path)
		}
		tr, err := trace.ReadTcpdump(r, path, stubPrefix)
		if err != nil {
			return nil, Info{}, err
		}
		if cerr := closeAll(c); cerr != nil {
			return nil, Info{}, cerr
		}
		return NewTraceSource(tr), Info{Name: tr.Name, Span: tr.Span, Records: len(tr.Records)}, nil
	default:
		s, err := trace.NewBinaryStream(r)
		if err != nil {
			return nil, Info{}, err
		}
		return &binarySource{BinaryStream: s, c: c},
			Info{Name: s.Name(), Span: s.Span(), Records: int(s.Count())}, nil
	}
}

// PcapInfo prescans a pcap stream in O(1) memory, returning its
// classified-record count and span — how the daemon sizes a pcap
// replay (total periods, progress denominators) before re-opening the
// file for the paced run.
func PcapInfo(r io.Reader) (Info, error) {
	s, err := trace.NewPcapStream(r)
	if err != nil {
		return Info{}, err
	}
	n := 0
	for {
		_, err := s.NextDir(netip.Prefix{})
		if err == io.EOF {
			break
		}
		if err != nil {
			return Info{}, err
		}
		n++
	}
	return Info{Span: s.Span(), Records: n}, nil
}

// multiCloser closes a chain of wrapped readers in order.
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func closeAll(c io.Closer) error {
	if c == nil {
		return nil
	}
	return c.Close()
}
