package ingest

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/flood"
	"repro/internal/packet"
	"repro/internal/trace"
)

var testPrefix = netip.MustParsePrefix("130.216.0.0/16")

// testTrace is ten minutes of Auckland-profile background with a
// three-minute flood overlaid, enough periods for warmup plus an alarm.
func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	p := trace.Auckland()
	p.Name = "ingest-test"
	p.Span = 10 * time.Minute
	p.OutagesPerHour = 0
	bg, err := trace.Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := flood.GenerateTrace(flood.Config{
		Pattern:    flood.Constant{PerSecond: 10},
		Start:      4 * time.Minute,
		Duration:   3 * time.Minute,
		Seed:       3,
		Victim:     netip.MustParseAddr("11.99.99.1"),
		VictimPort: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Merge("ingest-test", bg, fl)
	tr.Span = bg.Span
	return tr
}

func processTraceReports(t testing.TB, tr *trace.Trace) []core.Report {
	t.Helper()
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := agent.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

func compareReports(t *testing.T, got, want []core.Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("report %d:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func runPipeline(t *testing.T, src Source, span time.Duration) []core.Report {
	t.Helper()
	det, err := NewAgentDetector(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Source: src, Detector: det, T0: 20 * time.Second, Span: span}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return det.Reports()
}

// TestPipelineMatchesProcessTrace pins the tentpole equivalence: the
// streaming pipeline produces bit-identical reports to the materialized
// ProcessTrace path, for every streaming format.
func TestPipelineMatchesProcessTrace(t *testing.T) {
	tr := testTrace(t)
	want := processTraceReports(t, tr)
	if len(want) == 0 {
		t.Fatal("no reports from reference path")
	}

	t.Run("trace source", func(t *testing.T) {
		compareReports(t, runPipeline(t, NewTraceSource(tr), 0), want)
	})

	t.Run("binary stream", func(t *testing.T) {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		s, err := trace.NewBinaryStream(&buf)
		if err != nil {
			t.Fatal(err)
		}
		compareReports(t, runPipeline(t, &binarySource{BinaryStream: s}, 0), want)
	})

	t.Run("csv stream", func(t *testing.T) {
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, tr); err != nil {
			t.Fatal(err)
		}
		compareReports(t, runPipeline(t, &csvSource{CSVStream: trace.NewCSVStream(&buf)}, 0), want)
	})

	t.Run("pcap stream", func(t *testing.T) {
		// Pcap timestamps truncate to microseconds, so the reference is
		// ProcessTrace over the decoded pcap, not the original trace.
		var buf bytes.Buffer
		if err := trace.WritePcap(&buf, tr); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		decoded, err := trace.ReadPcap(bytes.NewReader(data), "ingest-test", testPrefix)
		if err != nil {
			t.Fatal(err)
		}
		pcapWant := processTraceReports(t, decoded)

		s, err := trace.NewPcapStream(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		src := &pcapSource{s: s, prefix: testPrefix}
		compareReports(t, runPipeline(t, src, 0), pcapWant)
	})
}

// TestPipelineAlarms sanity-checks the end decision, not just the
// report bytes: the flooded trace must alarm, the quiet one must not.
func TestPipelineAlarms(t *testing.T) {
	det, err := NewAgentDetector(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Source: NewTraceSource(testTrace(t)), Detector: det, T0: 20 * time.Second}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !det.Alarmed() || det.FirstAlarm() == nil {
		t.Fatal("flooded trace did not alarm")
	}

	quiet, err := NewSyntheticSource(func() trace.Profile {
		p := trace.Auckland()
		p.Span = 10 * time.Minute
		p.OutagesPerHour = 0
		return p
	}(), 7)
	if err != nil {
		t.Fatal(err)
	}
	det2, err := NewAgentDetector(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := &Pipeline{Source: quiet, Detector: det2, T0: 20 * time.Second}
	if err := p2.Run(); err != nil {
		t.Fatal(err)
	}
	if det2.Alarmed() {
		t.Fatal("quiet trace alarmed")
	}
}

// TestPipelineResume pins the restart guarantee on the streaming path:
// a detector restored from a mid-run snapshot, replaying the same
// source, ends with reports bit-identical to an uninterrupted run.
func TestPipelineResume(t *testing.T) {
	tr := testTrace(t)
	want := processTraceReports(t, tr)

	// First half: process the clipped trace, snapshot, restore.
	half := *tr
	half.Records = append([]trace.Record(nil), tr.Records...)
	half.ClipSpan(5 * time.Minute)
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.ProcessTrace(&half); err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreAgent(agent.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	det := WrapAgent(restored)
	if det.Periods() == 0 || det.Periods() >= len(want) {
		t.Fatalf("resume offset %d not strictly inside run of %d", det.Periods(), len(want))
	}
	p := &Pipeline{Source: NewTraceSource(tr), Detector: det, T0: 20 * time.Second}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	compareReports(t, det.Reports(), want)
}

// TestChanSource drives the pipeline from a producer goroutine — the
// live-capture shape — and checks equivalence with the batch path.
func TestChanSource(t *testing.T) {
	tr := testTrace(t)
	want := processTraceReports(t, tr)

	src := NewChanSource(64)
	go func() {
		for _, r := range tr.Records {
			src.Send(r)
		}
		src.CloseSend()
	}()
	compareReports(t, runPipeline(t, src, tr.Span), want)
}

// TestIPTraceSource round-trips a trace through the iptrace capture
// format: direction comes from the tx flag, not a prefix heuristic.
func TestIPTraceSource(t *testing.T) {
	tr := testTrace(t)

	var buf bytes.Buffer
	if err := trace.WriteIPTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}

	src, err := NewIPTraceSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) == 0 {
		t.Fatal("no records decoded")
	}
	// KindNotTCP records cannot be expressed as TCP segments; everything
	// else must round-trip exactly, including direction.
	i := 0
	for _, wantRec := range tr.Records {
		if wantRec.Kind == packet.KindNotTCP {
			continue
		}
		if i >= len(got) {
			t.Fatalf("decoded %d records, expected more", len(got))
		}
		if got[i] != wantRec {
			t.Fatalf("record %d:\n got  %+v\n want %+v", i, got[i], wantRec)
		}
		i++
	}
	if i != len(got) {
		t.Fatalf("decoded %d extra records", len(got)-i)
	}
}

// TestReplayCountsMatchesProcessCounts pins the counts fast path on
// the unified interface.
func TestReplayCountsMatchesProcessCounts(t *testing.T) {
	tr := testTrace(t)
	pc, err := tr.Aggregate(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := agent.ProcessCounts(pc)
	if err != nil {
		t.Fatal(err)
	}

	det, err := NewAgentDetector(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayCounts(det, pc); err != nil {
		t.Fatal(err)
	}
	compareReports(t, det.Reports(), want)
}

// TestBaselineDetectors checks the wrapped detect baselines latch the
// same first alarm as detect.Run over the same series.
func TestBaselineDetectors(t *testing.T) {
	tr := testTrace(t)
	pc, err := tr.Aggregate(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	series := make([]detect.Observation, pc.Periods())
	for i := range series {
		series[i] = detect.Observation{OutSYN: pc.OutSYN[i], InSYNACK: pc.InSYNACK[i]}
	}

	for _, name := range DetectorNames()[1:] {
		t.Run(name, func(t *testing.T) {
			wrapped, err := NewDetector(name, DetectorConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := ReplayCounts(wrapped, pc); err != nil {
				t.Fatal(err)
			}

			ref, err := NewDetector(name, DetectorConfig{})
			if err != nil {
				t.Fatal(err)
			}
			refBase := ref.(*baselineDetector).det
			res := detect.Run(refBase, series)
			refBase.Reset()

			gotFirst := -1
			if al := wrapped.FirstAlarm(); al != nil {
				gotFirst = al.Period
			}
			if gotFirst != res.FirstAlarm {
				t.Errorf("first alarm = %d, detect.Run = %d", gotFirst, res.FirstAlarm)
			}
			if wrapped.Name() != name {
				t.Errorf("name = %q, want %q", wrapped.Name(), name)
			}
		})
	}
}

func TestNewDetectorRejectsUnknown(t *testing.T) {
	if _, err := NewDetector("nonsense", DetectorConfig{}); err == nil {
		t.Fatal("want error for unknown detector name")
	}
}

// TestPipelineErrors covers the aggregator's streaming validation.
func TestPipelineErrors(t *testing.T) {
	det, err := NewAgentDetector(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(20*time.Second, time.Minute, det, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Feed(trace.Record{Ts: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := agg.Feed(trace.Record{Ts: 10 * time.Second}); err == nil {
		t.Error("want error for out-of-order record")
	}
	if err := agg.Feed(trace.Record{Ts: 2 * time.Minute}); err == nil {
		t.Error("want error for record outside span")
	}

	// A span-less source with no override cannot finish.
	det2, _ := NewAgentDetector(core.Config{})
	agg2, err := NewAggregator(20*time.Second, 0, det2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg2.Finish(0); err == nil {
		t.Error("want error for missing span")
	}
}

// TestStreamingPcapAllocs pins the O(1)-memory claim: pushing a large
// pcap through the full pipeline must not allocate per record — the
// reader reuses its scratch buffer and the aggregator holds only the
// current period's counters.
func TestStreamingPcapAllocs(t *testing.T) {
	tr := testTrace(t)
	var buf bytes.Buffer
	if err := trace.WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	records := len(tr.Records)

	allocs := testing.AllocsPerRun(3, func() {
		s, err := trace.NewPcapStream(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewAgentDetector(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		p := &Pipeline{Source: &pcapSource{s: s, prefix: testPrefix}, Detector: det, T0: 20 * time.Second}
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
	})
	// The fixed setup (reader, agent, report slice) costs a bounded
	// number of allocations; per-record cost must be zero. Give the
	// fixed part generous headroom and assert it does not scale.
	if maxAllocs := 200.0; allocs > maxAllocs {
		t.Errorf("pipeline allocated %.0f times for %d records (want fixed cost ≤ %.0f)",
			allocs, records, maxAllocs)
	}
	if perRecord := allocs / float64(records); perRecord > 0.01 {
		t.Errorf("allocs/record = %.4f, want ~0 (streaming path must not allocate per record)", perRecord)
	}
}
