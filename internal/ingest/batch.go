package ingest

import (
	"io"
	"sync"

	"repro/internal/trace"
)

// DefaultChunk is the record-chunk size the batch pipeline uses when
// the caller does not pick one: 1024 records × 48 B ≈ 48 KiB per
// chunk — large enough to amortize interface dispatch and period
// bookkeeping to noise, small enough to stay cache- and
// latency-friendly for live feeds.
const DefaultChunk = 1024

// BatchSource is the chunked face of a record stream: NextBatch fills
// buf with up to len(buf) records and returns how many it wrote.
// io.EOF — which may arrive together with n > 0 (EOF mid-chunk) —
// marks a clean end of stream; any other error invalidates nothing
// before buf[n]. Every source ingest.Open returns implements it
// natively; AsBatch adapts anything else.
type BatchSource interface {
	NextBatch(buf []trace.Record) (n int, err error)
	Close() error
}

// AsBatch returns src's chunked face: src itself when it is a native
// BatchSource, otherwise a thin adapter that fills each chunk through
// the single-record Next — the compatibility path for Source
// implementations outside this package.
func AsBatch(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchAdapter{src: src}
}

// batchAdapter lifts a legacy single-record Source onto the batch
// contract. The per-record interface call remains — the adapter exists
// so the rest of the pipeline has exactly one shape — but everything
// downstream of the source still runs chunk at a time.
type batchAdapter struct {
	src Source
}

func (a *batchAdapter) NextBatch(buf []trace.Record) (int, error) {
	n := 0
	for n < len(buf) {
		r, err := a.src.Next()
		if err != nil {
			return n, err
		}
		buf[n] = r
		n++
	}
	return n, nil
}

func (a *batchAdapter) Close() error { return a.src.Close() }

// arenaFreeSlots bounds the alloc-free fast lane of an Arena; chunks
// beyond it spill into the sync.Pool (which boxes the slice header,
// one small allocation per spill, and is subject to GC).
const arenaFreeSlots = 16

// Arena is a sync.Pool-backed pool of fixed-capacity record chunks.
// Get hands out a full-length chunk, Put returns it for reuse; after
// the pool warms up, pushing any number of chunks through a pipeline
// allocates nothing per record. A small channel free list fronts the
// sync.Pool so the steady-state Get/Put cycle is zero-allocation
// (Put into a sync.Pool would box the slice header) and immune to GC
// emptying the pool. Arenas are safe for concurrent use.
type Arena struct {
	size int
	free chan []trace.Record
	pool sync.Pool
}

// NewArena builds an arena of chunks holding size records each
// (DefaultChunk when size <= 0).
func NewArena(size int) *Arena {
	if size <= 0 {
		size = DefaultChunk
	}
	a := &Arena{size: size, free: make(chan []trace.Record, arenaFreeSlots)}
	a.pool.New = func() any {
		buf := make([]trace.Record, a.size)
		return &buf
	}
	return a
}

// Size returns the arena's chunk capacity in records.
func (a *Arena) Size() int { return a.size }

// Get returns a chunk of length Size. Contents are unspecified; the
// caller overwrites before reading.
func (a *Arena) Get() []trace.Record {
	select {
	case buf := <-a.free:
		return buf
	default:
		return *(a.pool.Get().(*[]trace.Record))
	}
}

// Put returns a chunk obtained from Get. Chunks of a different
// capacity are dropped rather than poisoning the pool.
func (a *Arena) Put(buf []trace.Record) {
	if cap(buf) != a.size {
		return
	}
	buf = buf[:a.size]
	select {
	case a.free <- buf:
	default:
		a.putSlow(buf)
	}
}

// putSlow spills an overflow chunk into the sync.Pool. Boxing the
// slice header (&buf) lives here, in its own frame, so the escape does
// not leak into Put's fast path — with it inline, every Put paid one
// heap allocation even when the free list took the chunk.
func (a *Arena) putSlow(buf []trace.Record) {
	a.pool.Put(&buf)
}

// DropCounter is implemented by live sources that shed records instead
// of blocking when their ring overruns (ChanSource in drop mode). The
// daemon surfaces the count in /metrics so backpressure loss is never
// silent.
type DropCounter interface {
	Dropped() uint64
}

// drain pulls src dry through the batch interface into agg, reusing
// one arena chunk. It is the shared run loop of Pipeline.Run and
// anything else that wants an unpaced full replay.
func drain(src BatchSource, agg *Aggregator, arena *Arena) error {
	buf := arena.Get()
	defer arena.Put(buf)
	for {
		n, err := src.NextBatch(buf)
		if n > 0 {
			if ferr := agg.FeedBatch(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
