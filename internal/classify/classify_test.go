package classify

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

var (
	stub  = netip.MustParsePrefix("152.2.0.0/16")
	anyV4 = netip.MustParsePrefix("0.0.0.0/0")
)

func mkKey(src, dst string, sport, dport uint16, flags uint8) Key {
	return Key{
		Src:     netip.MustParseAddr(src),
		Dst:     netip.MustParseAddr(dst),
		SrcPort: sport,
		DstPort: dport,
		Flags:   flags,
	}
}

func TestActionString(t *testing.T) {
	want := map[Action]string{
		ActionForward: "forward",
		ActionCount:   "count",
		ActionMark:    "mark",
		ActionDrop:    "drop",
		Action(99):    "action(99)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestPortRange(t *testing.T) {
	r := PortRange{Lo: 80, Hi: 90}
	if !r.Contains(80) || !r.Contains(90) || r.Contains(79) || r.Contains(91) {
		t.Error("port range bounds wrong")
	}
	if !AnyPort.Contains(0) || !AnyPort.Contains(65535) {
		t.Error("AnyPort should match everything")
	}
	if (PortRange{Lo: 5, Hi: 4}).Valid() {
		t.Error("inverted range reported valid")
	}
}

func TestFlagFilter(t *testing.T) {
	if !SYNOnly.Matches(packet.FlagSYN) {
		t.Error("SYNOnly misses pure SYN")
	}
	if SYNOnly.Matches(packet.FlagSYN | packet.FlagACK) {
		t.Error("SYNOnly matches SYN/ACK")
	}
	if !SYNACKOnly.Matches(packet.FlagSYN | packet.FlagACK) {
		t.Error("SYNACKOnly misses SYN/ACK")
	}
	// Zero filter matches anything.
	var anyFlags FlagFilter
	if !anyFlags.Matches(0) || !anyFlags.Matches(packet.FlagRST) {
		t.Error("zero filter should match everything")
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{Name: "no-prefix", Action: ActionDrop, SrcPort: AnyPort, DstPort: AnyPort},
		{Name: "bad-port", Src: anyV4, Dst: anyV4, SrcPort: PortRange{5, 4}, DstPort: AnyPort, Action: ActionDrop},
		{Name: "no-action", Src: anyV4, Dst: anyV4, SrcPort: AnyPort, DstPort: AnyPort},
	}
	for _, r := range bad {
		if _, err := NewLinear([]Rule{r}); err == nil {
			t.Errorf("linear accepted %q", r.Name)
		}
		if _, err := NewTrie([]Rule{r}); err == nil {
			t.Errorf("trie accepted %q", r.Name)
		}
	}
}

// buildBoth constructs both classifiers over the same rules.
func buildBoth(t *testing.T, rules []Rule) (Classifier, Classifier) {
	t.Helper()
	lin, err := NewLinear(rules)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := NewTrie(rules)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Rules() != len(rules) || tri.Rules() != len(rules) {
		t.Fatalf("rule counts: linear %d, trie %d, want %d", lin.Rules(), tri.Rules(), len(rules))
	}
	return lin, tri
}

func TestSynDogRules(t *testing.T) {
	rules := SynDogRules(stub)
	lin, tri := buildBoth(t, rules)
	cases := []struct {
		name string
		key  Key
		want Action
		rule string
	}{
		{"outgoing syn", mkKey("152.2.1.1", "11.0.0.1", 40000, 80, packet.FlagSYN), ActionCount, "count-outgoing-syn"},
		{"incoming synack", mkKey("11.0.0.1", "152.2.1.1", 80, 40000, packet.FlagSYN|packet.FlagACK), ActionCount, "count-incoming-synack"},
		{"outgoing data", mkKey("152.2.1.1", "11.0.0.1", 40000, 80, packet.FlagACK), ActionForward, "default-forward"},
		{"incoming pure syn", mkKey("11.0.0.1", "152.2.1.1", 50000, 80, packet.FlagSYN), ActionForward, "default-forward"},
		{"external syn", mkKey("11.0.0.1", "11.0.0.2", 1, 2, packet.FlagSYN), ActionForward, "default-forward"},
		// Spoofed-source flood SYN: src outside stub going outside —
		// hits the default rule at this (source-keyed) classifier;
		// counting spoofed floods is the *direction* tap's job, which
		// keys on interface, not source (see internal/netsim).
		{"spoofed syn", mkKey("240.0.0.1", "11.0.0.1", 1, 80, packet.FlagSYN), ActionForward, "default-forward"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, c := range []Classifier{lin, tri} {
				v, err := c.Classify(tc.key)
				if err != nil {
					t.Fatalf("%T: %v", c, err)
				}
				if v.Action != tc.want || v.Rule != tc.rule {
					t.Errorf("%T = %v/%q, want %v/%q", c, v.Action, v.Rule, tc.want, tc.rule)
				}
			}
		})
	}
}

func TestPriorityAndTieBreak(t *testing.T) {
	rules := []Rule{
		{Name: "low", Src: anyV4, Dst: anyV4, SrcPort: AnyPort, DstPort: AnyPort, Priority: 1, Action: ActionForward},
		{Name: "first-high", Src: anyV4, Dst: anyV4, SrcPort: AnyPort, DstPort: AnyPort, Priority: 9, Action: ActionMark},
		{Name: "second-high", Src: anyV4, Dst: anyV4, SrcPort: AnyPort, DstPort: AnyPort, Priority: 9, Action: ActionDrop},
	}
	lin, tri := buildBoth(t, rules)
	k := mkKey("1.2.3.4", "5.6.7.8", 1, 2, 0)
	for _, c := range []Classifier{lin, tri} {
		v, err := c.Classify(k)
		if err != nil {
			t.Fatal(err)
		}
		if v.Rule != "first-high" {
			t.Errorf("%T tie-break picked %q, want first-high", c, v.Rule)
		}
	}
}

func TestLongestPrefixDoesNotTrumpPriority(t *testing.T) {
	// A /32 rule with lower priority must lose to a /0 rule with
	// higher priority: classification is priority-ordered, not LPM.
	rules := []Rule{
		{Name: "specific", Src: netip.MustParsePrefix("10.0.0.1/32"), Dst: anyV4,
			SrcPort: AnyPort, DstPort: AnyPort, Priority: 1, Action: ActionDrop},
		{Name: "general", Src: anyV4, Dst: anyV4,
			SrcPort: AnyPort, DstPort: AnyPort, Priority: 5, Action: ActionForward},
	}
	lin, tri := buildBoth(t, rules)
	k := mkKey("10.0.0.1", "9.9.9.9", 1, 2, 0)
	for _, c := range []Classifier{lin, tri} {
		v, err := c.Classify(k)
		if err != nil {
			t.Fatal(err)
		}
		if v.Rule != "general" {
			t.Errorf("%T = %q, want general", c, v.Rule)
		}
	}
}

func TestNoVerdict(t *testing.T) {
	rules := []Rule{{
		Name: "narrow", Src: netip.MustParsePrefix("10.0.0.0/8"), Dst: anyV4,
		SrcPort: AnyPort, DstPort: AnyPort, Action: ActionDrop,
	}}
	lin, tri := buildBoth(t, rules)
	k := mkKey("11.0.0.1", "9.9.9.9", 1, 2, 0)
	for _, c := range []Classifier{lin, tri} {
		if _, err := c.Classify(k); err != ErrNoVerdict {
			t.Errorf("%T error = %v, want ErrNoVerdict", c, err)
		}
	}
}

func TestKeyFromSegment(t *testing.T) {
	seg := packet.Build(
		netip.MustParseAddr("1.2.3.4"), netip.MustParseAddr("5.6.7.8"),
		1111, 2222, 9, 10, packet.FlagSYN)
	k := KeyFromSegment(&seg)
	if k.Src != seg.IP.Src || k.Dst != seg.IP.Dst ||
		k.SrcPort != 1111 || k.DstPort != 2222 || k.Flags != packet.FlagSYN {
		t.Errorf("key = %+v", k)
	}
}

// randomRules builds a reproducible random rule set.
func randomRules(rng *rand.Rand, n int) []Rule {
	actions := []Action{ActionForward, ActionCount, ActionMark, ActionDrop}
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		srcBits := rng.Intn(33)
		dstBits := rng.Intn(33)
		src, _ := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}).Prefix(srcBits)
		dst, _ := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}).Prefix(dstBits)
		lo := uint16(rng.Intn(65536))
		hi := lo + uint16(rng.Intn(int(65535-lo)+1))
		var ff FlagFilter
		if rng.Intn(2) == 0 {
			ff = FlagFilter{Mask: uint8(rng.Intn(64)), Want: 0}
			ff.Want = uint8(rng.Intn(64)) & ff.Mask
		}
		rules = append(rules, Rule{
			Name:     fmt.Sprintf("r%d", i),
			Src:      src,
			Dst:      dst,
			SrcPort:  PortRange{Lo: lo, Hi: hi},
			DstPort:  AnyPort,
			Flags:    ff,
			Priority: rng.Intn(10),
			Action:   actions[rng.Intn(len(actions))],
		})
	}
	return rules
}

func randomKey(rng *rand.Rand) Key {
	return Key{
		Src:     netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
		Dst:     netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Flags:   uint8(rng.Intn(64)),
	}
}

// The central property: the trie agrees with the linear reference on
// every key for every rule set.
func TestTrieAgreesWithLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rules := randomRules(rng, 1+rng.Intn(40))
		lin, err := NewLinear(rules)
		if err != nil {
			return false
		}
		tri, err := NewTrie(rules)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			var k Key
			if i%3 == 0 && len(rules) > 0 {
				// Bias some keys into rule prefixes so matches happen.
				r := rules[rng.Intn(len(rules))]
				k = randomKey(rng)
				k.Src = r.Src.Addr()
				k.Dst = r.Dst.Addr()
			} else {
				k = randomKey(rng)
			}
			lv, lerr := lin.Classify(k)
			tv, terr := tri.Classify(k)
			if (lerr == nil) != (terr == nil) {
				return false
			}
			if lerr == nil && (lv.Action != tv.Action || lv.Rule != tv.Rule) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func benchRules(n int) []Rule {
	rng := rand.New(rand.NewSource(42))
	rules := randomRules(rng, n)
	// Guarantee a default so every key classifies.
	rules = append(rules, Rule{
		Name: "default", Src: anyV4, Dst: anyV4,
		SrcPort: AnyPort, DstPort: AnyPort, Priority: -1, Action: ActionForward,
	})
	return rules
}

func BenchmarkLinear1kRules(b *testing.B) {
	lin, err := NewLinear(benchRules(1000))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 1024)
	for i := range keys {
		keys[i] = randomKey(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lin.Classify(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrie1kRules(b *testing.B) {
	tri, err := NewTrie(benchRules(1000))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 1024)
	for i := range keys {
		keys[i] = randomKey(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tri.Classify(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
