package classify

import (
	"net/netip"
	"sort"
)

// TrieClassifier is a grid-of-tries-style structure: a binary trie on
// the source prefix whose nodes hang a second binary trie on the
// destination prefix; each (src, dst) grid cell stores the rules with
// exactly those prefixes, pre-sorted by priority. A lookup walks the
// source trie along the key's source address, and at every node with
// a destination trie walks that along the destination address,
// collecting candidate cells; the highest-priority candidate rule
// whose port ranges and flags also match wins.
//
// This mirrors the hierarchical-trie family of [28] (Srinivasan et
// al., "Fast and Scalable Layer Four Switching"): exact for any rule
// set, with lookup cost proportional to address bits rather than rule
// count.
type TrieClassifier struct {
	root  *srcNode
	count int
}

// srcNode is one source-trie node.
type srcNode struct {
	children [2]*srcNode
	dst      *dstNode // destination trie for rules whose src prefix ends here
}

// dstNode is one destination-trie node.
type dstNode struct {
	children [2]*dstNode
	rules    []ruleRef // rules anchored at this (src,dst) cell, priority desc
}

// ruleRef keeps the original insertion index for stable tie-breaks.
type ruleRef struct {
	rule  Rule
	index int
}

// NewTrie builds a trie classifier from rules.
func NewTrie(rules []Rule) (*TrieClassifier, error) {
	t := &TrieClassifier{root: &srcNode{}}
	for i := range rules {
		if err := rules[i].validate(); err != nil {
			return nil, err
		}
		t.insert(rules[i], i)
	}
	t.sortCells(t.root)
	return t, nil
}

func (t *TrieClassifier) insert(r Rule, index int) {
	sn := t.root
	srcBits := prefixBits(r.Src)
	for _, b := range srcBits {
		if sn.children[b] == nil {
			sn.children[b] = &srcNode{}
		}
		sn = sn.children[b]
	}
	if sn.dst == nil {
		sn.dst = &dstNode{}
	}
	dn := sn.dst
	for _, b := range prefixBits(r.Dst) {
		if dn.children[b] == nil {
			dn.children[b] = &dstNode{}
		}
		dn = dn.children[b]
	}
	dn.rules = append(dn.rules, ruleRef{rule: r, index: index})
	t.count++
}

// sortCells orders every cell's rules by (priority desc, index asc).
func (t *TrieClassifier) sortCells(sn *srcNode) {
	if sn == nil {
		return
	}
	if sn.dst != nil {
		sortDst(sn.dst)
	}
	t.sortCells(sn.children[0])
	t.sortCells(sn.children[1])
}

func sortDst(dn *dstNode) {
	if dn == nil {
		return
	}
	sort.SliceStable(dn.rules, func(i, j int) bool {
		if dn.rules[i].rule.Priority != dn.rules[j].rule.Priority {
			return dn.rules[i].rule.Priority > dn.rules[j].rule.Priority
		}
		return dn.rules[i].index < dn.rules[j].index
	})
	sortDst(dn.children[0])
	sortDst(dn.children[1])
}

// Classify implements Classifier.
func (t *TrieClassifier) Classify(k Key) (Verdict, error) {
	best := ruleRef{index: -1}
	haveBest := false

	consider := func(refs []ruleRef) {
		for _, ref := range refs {
			if haveBest && !betterThan(ref, best) {
				// Cells are priority-sorted, so once a cell's head is
				// no better than the current best, the rest cannot be
				// either.
				return
			}
			if ref.rule.SrcPort.Contains(k.SrcPort) &&
				ref.rule.DstPort.Contains(k.DstPort) &&
				ref.rule.Flags.Matches(k.Flags) {
				best = ref
				haveBest = true
				return
			}
		}
	}

	// Walk the source trie along the key's source bits; at every node
	// reached (every matching source prefix length), walk its dst trie.
	sn := t.root
	srcPath := addrBits(k.Src)
	for depth := 0; ; depth++ {
		if sn.dst != nil {
			walkDst(sn.dst, addrBits(k.Dst), consider)
		}
		if depth >= len(srcPath) {
			break
		}
		next := sn.children[srcPath[depth]]
		if next == nil {
			break
		}
		sn = next
	}
	if !haveBest {
		return Verdict{}, ErrNoVerdict
	}
	return Verdict{Action: best.rule.Action, Rule: best.rule.Name}, nil
}

func betterThan(a, b ruleRef) bool {
	if a.rule.Priority != b.rule.Priority {
		return a.rule.Priority > b.rule.Priority
	}
	return a.index < b.index
}

// walkDst visits every destination-trie cell along the key's bits.
func walkDst(dn *dstNode, path []uint8, visit func([]ruleRef)) {
	for depth := 0; ; depth++ {
		if len(dn.rules) > 0 {
			visit(dn.rules)
		}
		if depth >= len(path) {
			return
		}
		next := dn.children[path[depth]]
		if next == nil {
			return
		}
		dn = next
	}
}

// Rules implements Classifier.
func (t *TrieClassifier) Rules() int { return t.count }

// prefixBits returns the prefix's significant bits as 0/1 values.
func prefixBits(p netip.Prefix) []uint8 {
	addr := p.Masked().Addr().As4()
	bits := make([]uint8, p.Bits())
	for i := 0; i < p.Bits(); i++ {
		bits[i] = (addr[i/8] >> (7 - i%8)) & 1
	}
	return bits
}

// addrBits returns all 32 bits of an IPv4 address.
func addrBits(a netip.Addr) []uint8 {
	v4 := a.As4()
	bits := make([]uint8, 32)
	for i := 0; i < 32; i++ {
		bits[i] = (v4[i/8] >> (7 - i%8)) & 1
	}
	return bits
}

// Compile-time interface checks.
var (
	_ Classifier = (*LinearClassifier)(nil)
	_ Classifier = (*TrieClassifier)(nil)
)

// SynDogRules returns the rule set a SYN-dog deployment installs at a
// leaf router for stub prefix p: count outgoing pure SYNs and incoming
// SYN/ACKs, forward everything else. This is the §2 by-product
// relationship made concrete: the sniffers are just two ActionCount
// rules in the router's classifier.
func SynDogRules(stub netip.Prefix) []Rule {
	anyV4 := netip.MustParsePrefix("0.0.0.0/0")
	return []Rule{
		{
			Name: "count-outgoing-syn", Priority: 100, Action: ActionCount,
			Src: stub, Dst: anyV4,
			SrcPort: AnyPort, DstPort: AnyPort,
			Flags: SYNOnly,
		},
		{
			Name: "count-incoming-synack", Priority: 100, Action: ActionCount,
			Src: anyV4, Dst: stub,
			SrcPort: AnyPort, DstPort: AnyPort,
			Flags: SYNACKOnly,
		},
		{
			Name: "default-forward", Priority: 0, Action: ActionForward,
			Src: anyV4, Dst: anyV4,
			SrcPort: AnyPort, DstPort: AnyPort,
		},
	}
}
