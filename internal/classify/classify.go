// Package classify implements the leaf-router packet-classification
// substrate that Section 2 of the paper builds on: SYN-dog is "a
// by-product of the router infrastructure that differentiates TCP
// control packets from data packets" [31], made fast by the
// large-scale multi-field classification schemes of [14, 15, 28].
//
// The package provides:
//
//   - Rule: a five-dimensional filter (source prefix, destination
//     prefix, source port range, destination port range, TCP flag
//     mask) with a priority and an action.
//   - LinearClassifier: the obvious priority-ordered scan — correct
//     for any rule set, O(rules) per packet.
//   - TrieClassifier: a two-stage longest-prefix-match structure
//     (source trie cross-producted with per-node destination tries,
//     in the spirit of grid-of-tries/cross-producting schemes) that
//     narrows candidates to the few rules whose prefixes match and
//     then resolves priority among them — sublinear in practice.
//
// Both implement the Classifier interface and must agree on every
// packet; the property test in classify_test.go enforces that, and
// the benchmarks quantify the gap that justifies the fancier
// structure at line rate.
package classify

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/packet"
)

// Action is what the router does with a matched packet.
type Action uint8

// Actions.
const (
	// ActionForward forwards on the fast path.
	ActionForward Action = iota + 1
	// ActionCount forwards and bumps a sniffer counter (the SYN-dog
	// hook).
	ActionCount
	// ActionMark forwards with a DSCP-style mark (service
	// differentiation, the original motivation of [31]).
	ActionMark
	// ActionDrop discards (ingress filtering).
	ActionDrop
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionForward:
		return "forward"
	case ActionCount:
		return "count"
	case ActionMark:
		return "mark"
	case ActionDrop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// PortRange is an inclusive port interval. The zero value matches
// nothing; use AnyPort for a wildcard.
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches every port.
var AnyPort = PortRange{Lo: 0, Hi: 65535}

// Contains reports whether p lies in the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// Valid reports Lo <= Hi.
func (r PortRange) Valid() bool { return r.Lo <= r.Hi }

// FlagFilter matches TCP flag bits: a packet matches when
// flags&Mask == Want. The zero value (Mask 0) matches everything.
type FlagFilter struct {
	Mask uint8
	Want uint8
}

// Matches applies the filter.
func (f FlagFilter) Matches(flags uint8) bool { return flags&f.Mask == f.Want }

// SYNOnly matches pure SYN segments (SYN set, ACK clear).
var SYNOnly = FlagFilter{Mask: packet.FlagSYN | packet.FlagACK, Want: packet.FlagSYN}

// SYNACKOnly matches SYN/ACK segments.
var SYNACKOnly = FlagFilter{Mask: packet.FlagSYN | packet.FlagACK, Want: packet.FlagSYN | packet.FlagACK}

// Rule is one classification rule. Higher Priority wins; ties break
// toward the rule added first.
type Rule struct {
	Name     string
	Src      netip.Prefix
	Dst      netip.Prefix
	SrcPort  PortRange
	DstPort  PortRange
	Flags    FlagFilter
	Priority int
	Action   Action
}

// Errors.
var (
	ErrBadRule   = errors.New("classify: invalid rule")
	ErrNoVerdict = errors.New("classify: no rule matched")
)

// validate checks rule invariants.
func (r *Rule) validate() error {
	if !r.Src.IsValid() || !r.Dst.IsValid() {
		return fmt.Errorf("%w: %q needs valid src/dst prefixes (use 0.0.0.0/0 for any)", ErrBadRule, r.Name)
	}
	if !r.SrcPort.Valid() || !r.DstPort.Valid() {
		return fmt.Errorf("%w: %q has an inverted port range", ErrBadRule, r.Name)
	}
	if r.Action == 0 {
		return fmt.Errorf("%w: %q has no action", ErrBadRule, r.Name)
	}
	return nil
}

// matches reports whether the rule matches a key.
func (r *Rule) matches(k Key) bool {
	return r.Src.Contains(k.Src) && r.Dst.Contains(k.Dst) &&
		r.SrcPort.Contains(k.SrcPort) && r.DstPort.Contains(k.DstPort) &&
		r.Flags.Matches(k.Flags)
}

// Key is the five-field classification key extracted from a packet.
type Key struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Flags            uint8
}

// KeyFromSegment extracts the key from a decoded segment.
func KeyFromSegment(seg *packet.Segment) Key {
	return Key{
		Src:     seg.IP.Src,
		Dst:     seg.IP.Dst,
		SrcPort: seg.TCP.SrcPort,
		DstPort: seg.TCP.DstPort,
		Flags:   seg.TCP.Flags,
	}
}

// Verdict is the classification result.
type Verdict struct {
	Action Action
	Rule   string
}

// Classifier decides a verdict per key.
type Classifier interface {
	// Classify returns the highest-priority matching rule's verdict,
	// or ErrNoVerdict when nothing matches.
	Classify(k Key) (Verdict, error)
	// Rules returns how many rules are installed.
	Rules() int
}

// LinearClassifier scans rules in priority order.
type LinearClassifier struct {
	rules []Rule // sorted by priority desc, insertion order within
}

// NewLinear builds a linear classifier from rules.
func NewLinear(rules []Rule) (*LinearClassifier, error) {
	sorted := make([]Rule, len(rules))
	copy(sorted, rules)
	for i := range sorted {
		if err := sorted[i].validate(); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Priority > sorted[j].Priority
	})
	return &LinearClassifier{rules: sorted}, nil
}

// Classify implements Classifier.
func (c *LinearClassifier) Classify(k Key) (Verdict, error) {
	for i := range c.rules {
		if c.rules[i].matches(k) {
			return Verdict{Action: c.rules[i].Action, Rule: c.rules[i].Name}, nil
		}
	}
	return Verdict{}, ErrNoVerdict
}

// Rules implements Classifier.
func (c *LinearClassifier) Rules() int { return len(c.rules) }
