// Package fusion is the multi-vantage half of distributed SYN-flood
// detection: a coordinator that ingests bandwidth-capped streams of
// summary.PeriodSummary from N independent SYN-dog monitors and runs a
// rank-based change-point rule over their censored local statistics.
//
// The design reproduces the censored-fusion construction of
// Lévy-Leduc & Roueff (2009) and Lung-Yut-Fong, Lévy-Leduc & Cappé
// (2011) on top of this repo's per-site CUSUM agents:
//
//   - Each monitor ships its per-period normalized observation Xn,
//     censored below a local threshold λ (the uplink zeroes Xn/yn and
//     drops digests; only cheap volume counters survive).
//   - The coordinator rank-normalizes each monitor against its own
//     history: the midrank quantile of the current value among the
//     monitor's recent values puts heterogeneous sites (a university
//     trace and a backbone trace) on one [0,1] scale without any
//     cross-site calibration. Censored values form one tied class
//     below every uncensored value.
//   - The fused statistic is the mean of the monitors' centered
//     quantiles, 2(q−1/2) ∈ [−1,1], fed to a standard one-sided CUSUM.
//     Under H0 each quantile is ≈ uniform and the mean hovers near 0;
//     a flood split across sites lifts many quantiles toward 1 at
//     once, which accumulates even when every site is individually
//     below its own fmin.
//   - Liveness beats completeness: a monitor whose frontier lags the
//     fleet by more than the staleness window is excluded (its gaps
//     fuse as censored placeholders), and fusion proceeds whenever a
//     quorum of monitors has reported a period. Duplicate and
//     out-of-order deliveries are idempotent — the first copy of a
//     (monitor, period) wins.
package fusion

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cusum"
	"repro/internal/summary"
)

// Defaults. Offset/Threshold are tuned for the centered-quantile scale
// (mean of 2(q−1/2) terms): under H0 the fused statistic is
// mean-zero with standard deviation ≈ 1/√(3M), so an offset of 0.3
// absorbs noise for any M ≥ 2 while a coordinated shift — every
// quantile pushed toward 1 — drifts at ≈ 1−q̄, crossing 0.9 within a
// few periods.
const (
	DefaultHistory        = 64
	DefaultMinHistory     = 4
	DefaultStaleAfter     = 3
	DefaultOffset         = 0.3
	DefaultThreshold      = 0.9
	DefaultLocalizeWindow = 5
)

// Config parameterizes a Coordinator.
type Config struct {
	// Expect is how many monitors the deployment runs. Fusion holds
	// until that many have registered (first delivery), so the first
	// periods are not fused against a half-assembled fleet, and the
	// default quorum is a majority of Expect rather than of whoever
	// showed up first. 0 = fuse as soon as anyone reports.
	Expect int
	// Quorum is the minimum number of monitors that must have reported
	// (or be confidently gap-filled) for a period to fuse. 0 defaults
	// to a majority of max(Expect, registered monitors), re-evaluated
	// as monitors appear.
	Quorum int
	// StaleAfter is the staleness window in periods: a monitor whose
	// newest period lags the most advanced monitor by more than this
	// is excluded from fusion (and from the quorum denominator) until
	// it catches up. 0 = DefaultStaleAfter.
	StaleAfter int
	// History bounds each monitor's quantile-normalization window
	// (0 = DefaultHistory).
	History int
	// MinHistory is how many observations a monitor needs before its
	// quantiles are trusted; until then it contributes the neutral
	// q = 1/2. 0 = DefaultMinHistory.
	MinHistory int
	// Offset and Threshold parameterize the fused CUSUM on the
	// centered-quantile scale (0 = the package defaults).
	Offset, Threshold float64
	// LocalizeWindow is how many recent fused periods the localization
	// averages when ranking monitors (0 = DefaultLocalizeWindow).
	LocalizeWindow int
}

func (c Config) withDefaults() Config {
	if c.StaleAfter <= 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	if c.History <= 0 {
		c.History = DefaultHistory
	}
	if c.MinHistory <= 0 {
		c.MinHistory = DefaultMinHistory
	}
	if c.Offset == 0 {
		c.Offset = DefaultOffset
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.LocalizeWindow <= 0 {
		c.LocalizeWindow = DefaultLocalizeWindow
	}
	return c
}

// obs is one monitor-period observation as fusion saw it.
type obs struct {
	x        float64
	censored bool
	gap      bool // synthesized: the period never arrived before fusion
}

// monitor is the coordinator's per-monitor state.
type monitor struct {
	name string

	// pending holds delivered-but-unfused summaries keyed by period
	// index; the first delivery of a period wins (idempotence).
	pending map[int]summary.PeriodSummary
	// latest is the newest period index ever delivered, -1 before the
	// first.
	latest int

	// history is the sliding rank window of fused observations,
	// oldest first.
	history []obs

	// contrib is the monitor's recent centered-quantile contributions,
	// aligned with the coordinator's fused periods (localization
	// window); gaps and stale exclusions append 0.
	contrib []float64

	// lastSources is the most recent non-empty digest list, kept for
	// localization after the flood's own periods censor or age out.
	lastSources []summary.SourceDigest

	received   uint64 // summaries accepted
	duplicates uint64 // summaries ignored as duplicate/already-fused
	gaps       uint64 // periods fused as synthesized gaps
}

// quantile returns the midrank quantile of o within m's history. A
// censored observation ties with the censored class and sits below
// every uncensored value; an uncensored value sits above the whole
// censored class. With fewer than MinHistory observations (or an
// all-censored history for a censored current) the result is the
// neutral 1/2.
func (m *monitor) quantile(o obs, minHistory int) float64 {
	n := len(m.history)
	if n < minHistory {
		return 0.5
	}
	below, ties := 0, 0
	for _, h := range m.history {
		switch {
		case o.censored || o.gap:
			// Current is in the censored class: ties with censored
			// history, below all uncensored history.
			if h.censored || h.gap {
				ties++
			}
		case h.censored || h.gap:
			below++
		case h.x < o.x:
			below++
		case h.x == o.x:
			ties++
		}
	}
	if (o.censored || o.gap) && ties == n {
		// Everything in sight is censored: no rank information at all.
		return 0.5
	}
	return (float64(below) + 0.5*float64(ties+1)) / float64(n+1)
}

func (m *monitor) push(o obs, cap int) {
	m.history = append(m.history, o)
	if len(m.history) > cap {
		m.history = m.history[len(m.history)-cap:]
	}
}

// MonitorStatus is one monitor's row in /monitors.
type MonitorStatus struct {
	Name       string `json:"name"`
	Latest     int    `json:"latest"`
	Pending    int    `json:"pending"`
	Stale      bool   `json:"stale"`
	Received   uint64 `json:"received"`
	Duplicates uint64 `json:"duplicates"`
	Gaps       uint64 `json:"gaps"`
}

// FusedPeriod is one fused observation: the period index, the fused
// statistic before and after the CUSUM fold, and which monitors
// participated.
type FusedPeriod struct {
	Index int `json:"period"`
	// X is the fused observation: the mean centered quantile of the
	// participating monitors.
	X float64 `json:"x"`
	// Y is the fused CUSUM statistic after folding X.
	Y       float64 `json:"yn"`
	Alarmed bool    `json:"alarmed"`
	// Participants counts monitors that contributed a real (delivered)
	// summary; Gaps counts synthesized censored placeholders; Stale
	// counts monitors excluded by the staleness window.
	Participants int `json:"participants"`
	Gaps         int `json:"gaps,omitempty"`
	Stale        int `json:"stale,omitempty"`
}

// Localization names the monitors and source prefixes carrying an
// attack.
type Localization struct {
	// Monitors are the implicated monitor names, strongest evidence
	// first.
	Monitors []string `json:"monitors"`
	// Prefixes are the implicated source prefixes (from the monitors'
	// top-K digests), strongest first, deduplicated.
	Prefixes []string `json:"prefixes"`
}

// Coordinator fuses summary streams from N monitors. It is fully
// synchronized: Ingest and the HTTP handlers may run concurrently.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	monitors map[string]*monitor
	order    []string // registration order: deterministic fusion
	frontier int      // next period index to fuse
	det      *cusum.Detector
	fused    []FusedPeriod

	alarm    *FusedPeriod  // first alarmed fused period
	alarmLoc *Localization // localization captured as the alarm latched
}

// NewCoordinator builds a coordinator; monitors register themselves on
// first delivery.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	det, err := cusum.New(cfg.Offset, cfg.Threshold)
	if err != nil {
		return nil, fmt.Errorf("fusion: %w", err)
	}
	if cfg.Quorum < 0 {
		return nil, fmt.Errorf("fusion: negative quorum %d", cfg.Quorum)
	}
	return &Coordinator{
		cfg:      cfg,
		monitors: make(map[string]*monitor),
		det:      det,
	}, nil
}

// quorum resolves the effective quorum for the current monitor set.
func (c *Coordinator) quorum() int {
	if c.cfg.Quorum > 0 {
		return c.cfg.Quorum
	}
	return max(len(c.monitors), c.cfg.Expect)/2 + 1
}

// Ingest folds a batch of summaries into the coordinator — the body of
// one uplink POST. Unknown monitors are registered, duplicate
// (monitor, period) deliveries and periods already fused are counted
// and ignored, and fusion advances as far as staleness and quorum
// allow. It returns how many summaries were accepted.
func (c *Coordinator) Ingest(batch []summary.PeriodSummary) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	accepted := 0
	for _, ps := range batch {
		if ps.Monitor == "" || ps.Index < 0 {
			continue
		}
		m := c.monitors[ps.Monitor]
		if m == nil {
			m = &monitor{name: ps.Monitor, pending: make(map[int]summary.PeriodSummary), latest: -1}
			c.monitors[ps.Monitor] = m
			c.order = append(c.order, ps.Monitor)
		}
		if ps.Index < c.frontier {
			m.duplicates++ // late: its period already fused (as gap or earlier copy)
			continue
		}
		if _, dup := m.pending[ps.Index]; dup {
			m.duplicates++
			continue
		}
		m.pending[ps.Index] = ps
		if ps.Index > m.latest {
			m.latest = ps.Index
		}
		if len(ps.Sources) > 0 {
			m.lastSources = ps.Sources
		}
		m.received++
		accepted++
	}
	c.advance()
	return accepted
}

// maxLatest returns the most advanced monitor frontier, -1 with no
// deliveries yet.
func (c *Coordinator) maxLatest() int {
	max := -1
	for _, name := range c.order {
		if l := c.monitors[name].latest; l > max {
			max = l
		}
	}
	return max
}

// advance fuses every period the delivery state allows. Period f (the
// frontier) fuses when, among non-stale monitors, everyone is ready —
// has f pending, or has moved past it (gap) — and the ready count
// meets the quorum. Stale monitors neither block nor vote.
func (c *Coordinator) advance() {
	if len(c.order) < c.cfg.Expect {
		return // the fleet is still assembling; hold the first periods
	}
	for {
		f := c.frontier
		top := c.maxLatest()
		if top < f {
			return // nothing at or past the frontier anywhere
		}
		ready, stale := 0, 0
		for _, name := range c.order {
			m := c.monitors[name]
			if top-m.latest > c.cfg.StaleAfter {
				stale++
				continue
			}
			if _, ok := m.pending[f]; ok || m.latest >= f {
				ready++
			}
		}
		live := len(c.order) - stale
		if ready < live || ready < c.quorum() {
			return
		}
		c.fuseOne(f, top)
	}
}

// fuseOne folds period f into the fused statistic. Caller holds c.mu
// and has established that every live monitor is ready.
func (c *Coordinator) fuseOne(f, top int) {
	fp := FusedPeriod{Index: f}
	var sum float64
	pushes := make(map[*monitor]obs, len(c.order))
	for _, name := range c.order {
		m := c.monitors[name]
		if top-m.latest > c.cfg.StaleAfter {
			// Excluded: no history push — a stale monitor's silence says
			// nothing about its traffic — and a zero contribution.
			m.contrib = append(m.contrib, 0)
			fp.Stale++
		} else {
			o := obs{gap: true}
			if ps, ok := m.pending[f]; ok {
				o = obs{x: ps.X, censored: ps.Censored}
				delete(m.pending, f)
				fp.Participants++
			} else {
				m.gaps++
				fp.Gaps++
			}
			q := m.quantile(o, c.cfg.MinHistory)
			ctr := 2 * (q - 0.5)
			sum += ctr
			m.contrib = append(m.contrib, ctr)
			pushes[m] = o
		}
		// Keep contributions to the history depth, not the localization
		// window: the alarm-time verdict needs room to look back over
		// however long the excursion took to cross the threshold.
		if len(m.contrib) > c.cfg.History {
			m.contrib = m.contrib[len(m.contrib)-c.cfg.History:]
		}
	}
	if n := fp.Participants + fp.Gaps; n > 0 {
		fp.X = sum / float64(n)
	}
	c.det.Observe(fp.X)
	// The rank histories are the H0 reference, so a mature reference
	// advances only while the fused CUSUM believes the fleet is quiet
	// (yn back at zero). During an excursion it freezes: otherwise a
	// slow-crossing dispersed flood slides into its own history, the
	// flood becomes the new normal, and the rank signal decays before
	// the threshold is reached. A noise excursion ends with yn at zero
	// and pushes resume, having skipped only a few periods. An immature
	// reference (under half the history depth) keeps growing regardless
	// — freezing a handful of observations would pin whatever rank bias
	// that tiny sample happens to carry for the whole excursion, and a
	// few monitors' pinned biases can sum past the offset and walk a
	// quiet fleet into a false alarm.
	quiet := c.det.Statistic() == 0
	for m, o := range pushes {
		if quiet || len(m.history) < c.cfg.History/2 {
			m.push(o, c.cfg.History)
		}
	}
	fp.Y = c.det.Statistic()
	fp.Alarmed = c.det.Alarmed()
	c.fused = append(c.fused, fp)
	if fp.Alarmed && c.alarm == nil {
		cp := fp
		c.alarm = &cp
	}
	// The alarm verdict hardens over the first localization window
	// after the alarm — a CUSUM crossing can lag the change by a single
	// loud period, so the instant-of-alarm window still holds mostly
	// pre-change noise — then freezes. The live Localize view keeps
	// sliding; this capture is the one an operator acts on.
	if c.alarm != nil && fp.Index < c.alarm.Index+c.cfg.LocalizeWindow {
		loc := c.localizeLocked(fp.Index - c.alarm.Index + 1)
		c.alarmLoc = &loc
	}
	c.frontier = f + 1
}

// Alarmed reports whether the fused CUSUM has latched an alarm.
func (c *Coordinator) Alarmed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.det.Alarmed()
}

// FirstAlarm returns the first alarmed fused period, nil before any.
func (c *Coordinator) FirstAlarm() *FusedPeriod {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.alarm == nil {
		return nil
	}
	cp := *c.alarm
	return &cp
}

// Fused returns the fused periods from index from on.
func (c *Coordinator) Fused(from int) []FusedPeriod {
	c.mu.Lock()
	defer c.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(c.fused) {
		from = len(c.fused)
	}
	return append([]FusedPeriod(nil), c.fused[from:]...)
}

// Monitors returns per-monitor delivery state in registration order.
func (c *Coordinator) Monitors() []MonitorStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	top := c.maxLatest()
	out := make([]MonitorStatus, 0, len(c.order))
	for _, name := range c.order {
		m := c.monitors[name]
		out = append(out, MonitorStatus{
			Name:       m.name,
			Latest:     m.latest,
			Pending:    len(m.pending),
			Stale:      top-m.latest > c.cfg.StaleAfter,
			Received:   m.received,
			Duplicates: m.duplicates,
			Gaps:       m.gaps,
		})
	}
	return out
}

// Localize ranks monitors by their mean centered-quantile contribution
// over the localization window and returns the set carrying the
// attack: every monitor whose mean contribution is positive
// (> 0.1, noise floor) and within half of the strongest one, plus the
// deduplicated source prefixes from those monitors' freshest digests,
// each monitor's digests in their tracker-ranked order.
//
// This is the live view — the window slides, so once an attack ends
// the verdict fades with it. The verdict at the moment the alarm
// latched is captured separately (AlarmLocalization, served by
// /status), which is the one an operator acts on.
func (c *Coordinator) Localize() Localization {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.localizeLocked(c.cfg.LocalizeWindow)
}

// localizeLocked scores each monitor over its last window contributions
// (window is clamped to what exists); the caller holds c.mu.
func (c *Coordinator) localizeLocked(window int) Localization {
	type ranked struct {
		name string
		mean float64
		srcs []summary.SourceDigest
	}
	var rs []ranked
	var top float64
	for _, name := range c.order {
		m := c.monitors[name]
		cw := m.contrib
		if len(cw) > window {
			cw = cw[len(cw)-window:]
		}
		if len(cw) == 0 {
			continue
		}
		var s float64
		for _, v := range cw {
			s += v
		}
		mean := s / float64(len(cw))
		rs = append(rs, ranked{name: m.name, mean: mean, srcs: m.lastSources})
		if mean > top {
			top = mean
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].mean > rs[j].mean })
	var loc Localization
	seen := make(map[string]bool)
	for _, r := range rs {
		if r.mean <= 0.1 || r.mean < top/2 {
			continue
		}
		loc.Monitors = append(loc.Monitors, r.name)
		for _, d := range r.srcs {
			key := d.Key.String()
			if !seen[key] {
				seen[key] = true
				loc.Prefixes = append(loc.Prefixes, key)
			}
		}
	}
	return loc
}

// Status is the coordinator's /status payload.
type Status struct {
	Monitors     int           `json:"monitors"`
	StaleCount   int           `json:"stale"`
	Quorum       int           `json:"quorum"`
	Frontier     int           `json:"frontier"`
	FusedPeriods int           `json:"fusedPeriods"`
	Statistic    float64       `json:"yn"`
	Alarmed      bool          `json:"alarmed"`
	AlarmPeriod  int           `json:"alarmPeriod,omitempty"`
	Localization *Localization `json:"localization,omitempty"`
}

// AlarmLocalization returns the localization captured as the first
// alarm latched, nil before any alarm.
func (c *Coordinator) AlarmLocalization() *Localization {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.alarmLoc == nil {
		return nil
	}
	cp := *c.alarmLoc
	return &cp
}

// Status snapshots the coordinator. Localization is attached only
// after an alarm — before one there is nothing to localize — and is
// the alarm-time capture, not the sliding live view.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	stale := 0
	top := c.maxLatest()
	for _, name := range c.order {
		if top-c.monitors[name].latest > c.cfg.StaleAfter {
			stale++
		}
	}
	s := Status{
		Monitors:     len(c.order),
		StaleCount:   stale,
		Quorum:       c.quorum(),
		Frontier:     c.frontier,
		FusedPeriods: len(c.fused),
		Statistic:    c.det.Statistic(),
		Alarmed:      c.det.Alarmed(),
	}
	if c.alarm != nil {
		s.AlarmPeriod = c.alarm.Index
	}
	if c.alarmLoc != nil {
		cp := *c.alarmLoc
		s.Localization = &cp
	}
	return s
}
