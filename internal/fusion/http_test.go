package fusion

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/summary"
)

func TestHandlerEndpoints(t *testing.T) {
	c, err := NewCoordinator(Config{Expect: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(batch []summary.PeriodSummary) string {
		body, _ := json.Marshal(batch)
		resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		var out struct {
			Accepted int `json:"accepted"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d", out.Accepted)
	}
	if got := post([]summary.PeriodSummary{mk("a", 0, 0.1), mk("b", 0, 0.1)}); got != "2" {
		t.Fatalf("accepted = %s, want 2", got)
	}
	if got := post([]summary.PeriodSummary{mk("a", 0, 0.1)}); got != "0" {
		t.Fatalf("duplicate accepted = %s, want 0", got)
	}

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	var st Status
	if err := json.Unmarshal([]byte(get("/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Monitors != 2 || st.FusedPeriods != 1 {
		t.Fatalf("status = %+v", st)
	}
	var fused []FusedPeriod
	if err := json.Unmarshal([]byte(get("/fused")), &fused); err != nil {
		t.Fatal(err)
	}
	if len(fused) != 1 || fused[0].Participants != 2 {
		t.Fatalf("fused = %+v", fused)
	}
	var mons []MonitorStatus
	if err := json.Unmarshal([]byte(get("/monitors")), &mons); err != nil {
		t.Fatal(err)
	}
	if len(mons) != 2 {
		t.Fatalf("monitors = %+v", mons)
	}
	metrics := get("/metrics")
	for _, want := range []string{"syndog_fusion_monitors 2", "syndog_fusion_periods_total 1",
		"syndog_fusion_summaries_received_total 2", "syndog_fusion_summaries_duplicate_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if get("/healthz") != "ok\n" {
		t.Fatal("healthz not ok")
	}
}

func TestIngestRejectsBadBody(t *testing.T) {
	c, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
}

// TestUplinkSoakKillRestart drives four real summary.Uplink clients
// against a coordinator over HTTP, kills one mid-stream and restarts
// it, and checks that (a) the dispersed flood is still detected via
// quorum, and (b) no goroutines leak once every uplink is closed —
// the soak-style fault-tolerance test the fusion layer is specified
// against. Run under -race in CI.
func TestUplinkSoakKillRestart(t *testing.T) {
	before := runtime.NumGoroutine()

	c, err := NewCoordinator(Config{Expect: 4, StaleAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())

	mkUplink := func() *summary.Uplink {
		u, err := summary.NewUplink(summary.UplinkConfig{
			URL: srv.URL, BatchSize: 2, FlushInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	ups := make([]*summary.Uplink, 4)
	for i := range ups {
		ups[i] = mkUplink()
	}

	rng := rand.New(rand.NewSource(11))
	send := func(i, p int, flood bool) {
		scale := 0.05 * float64(i+1)
		x := scale * rng.Float64()
		if flood {
			x = scale + 0.01
		}
		ups[i].Send(mk(fmt.Sprintf("m%d", i), p, x))
	}

	// Quiet prefix from all four monitors.
	for p := 0; p < 40; p++ {
		for i := range ups {
			send(i, p, false)
		}
	}
	// m2's uplink dies at the flood onset...
	ups[2].Close()
	for p := 40; p < 52; p++ {
		for i := range ups {
			if i != 2 {
				send(i, p, true)
			}
		}
	}
	// ...and is restarted (a fresh process resuming its stream).
	ups[2] = mkUplink()
	for p := 52; p < 70; p++ {
		for i := range ups {
			send(i, p, true)
		}
	}
	for _, u := range ups {
		u.Close()
	}

	// Everything is flushed (Close drains), so the coordinator has all
	// surviving summaries now.
	if !c.Alarmed() {
		t.Fatalf("dispersed flood with one restarted uplink never alarmed: %+v\n%+v",
			c.Status(), c.Monitors())
	}
	al := c.FirstAlarm()
	if al == nil || al.Index < 40 {
		t.Fatalf("alarm outside the flood: %+v", al)
	}

	srv.Close()
	// Goroutine-leak check: closed uplinks and the shut-down server
	// must not leave senders behind. Poll briefly — the HTTP server's
	// connection goroutines take a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after close", before, runtime.NumGoroutine())
}
