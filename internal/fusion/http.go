package fusion

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/summary"
)

// maxIngestBody bounds one uplink POST. A summary is a few hundred
// bytes with a full digest list; a default-sized batch is well under
// 64 KiB, so 1 MiB leaves an order of magnitude of headroom while
// keeping a misbehaving client from ballooning the coordinator.
const maxIngestBody = 1 << 20

// Handler builds the coordinator's HTTP plane:
//
//	POST /ingest   <- JSON array of summary.PeriodSummary (the uplink
//	                  batch format); responds {"accepted": n}
//	GET  /healthz  -> 200 "ok"
//	GET  /status   -> JSON Status (localization attached once alarmed)
//	GET  /fused    -> JSON array of fused periods (?from= first index)
//	GET  /monitors -> JSON per-monitor delivery state
//	GET  /metrics  -> Prometheus-style text exposition
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch []summary.PeriodSummary
		if err := json.Unmarshal(body, &batch); err != nil {
			http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		n := c.Ingest(batch)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"accepted\": %d}\n", n)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Status())
	})
	mux.HandleFunc("GET /fused", func(w http.ResponseWriter, r *http.Request) {
		from := 0
		if q := r.URL.Query().Get("from"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
				return
			}
			from = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Fused(from))
	})
	mux.HandleFunc("GET /monitors", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Monitors())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.writeMetrics(w)
	})
	return mux
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writeMetrics renders the coordinator exposition, mirroring the
// daemon's metric style (syndog_fusion_ prefix, TYPE headers, one
// sample per line).
func (c *Coordinator) writeMetrics(w io.Writer) {
	s := c.Status()
	var received, duplicates, gaps uint64
	for _, m := range c.Monitors() {
		received += m.Received
		duplicates += m.Duplicates
		gaps += m.Gaps
	}
	fmt.Fprintf(w, "# TYPE syndog_fusion_monitors gauge\nsyndog_fusion_monitors %d\n", s.Monitors)
	fmt.Fprintf(w, "# TYPE syndog_fusion_monitors_stale gauge\nsyndog_fusion_monitors_stale %d\n", s.StaleCount)
	fmt.Fprintf(w, "# TYPE syndog_fusion_quorum gauge\nsyndog_fusion_quorum %d\n", s.Quorum)
	fmt.Fprintf(w, "# TYPE syndog_fusion_periods_total counter\nsyndog_fusion_periods_total %d\n", s.FusedPeriods)
	fmt.Fprintf(w, "# TYPE syndog_fusion_statistic gauge\nsyndog_fusion_statistic %g\n", s.Statistic)
	fmt.Fprintf(w, "# TYPE syndog_fusion_alarmed gauge\nsyndog_fusion_alarmed %d\n", b2i(s.Alarmed))
	fmt.Fprintf(w, "# TYPE syndog_fusion_summaries_received_total counter\nsyndog_fusion_summaries_received_total %d\n", received)
	fmt.Fprintf(w, "# TYPE syndog_fusion_summaries_duplicate_total counter\nsyndog_fusion_summaries_duplicate_total %d\n", duplicates)
	fmt.Fprintf(w, "# TYPE syndog_fusion_gap_periods_total counter\nsyndog_fusion_gap_periods_total %d\n", gaps)
}
