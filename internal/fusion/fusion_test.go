package fusion

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/summary"
)

func prefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mk builds one summary for monitor m at period p with observation x.
func mk(m string, p int, x float64) summary.PeriodSummary {
	return summary.PeriodSummary{Monitor: m, Index: p, X: x, Y: x}
}

// censored builds one censored summary (the wire form of a quiet
// period).
func censored(m string, p int) summary.PeriodSummary {
	return summary.PeriodSummary{Monitor: m, Index: p, Censored: true}
}

// deliverQuiet feeds periods [from, to) of uncorrelated quiet noise to
// every named monitor, round-robin in period order. The rng keeps the
// sites heterogeneous: each has its own scale, which the quantile
// normalization must erase.
func deliverQuiet(t *testing.T, c *Coordinator, names []string, from, to int, rng *rand.Rand) {
	t.Helper()
	for p := from; p < to; p++ {
		for i, m := range names {
			scale := 0.05 * float64(i+1)
			c.Ingest([]summary.PeriodSummary{mk(m, p, scale*rng.Float64())})
		}
	}
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m%d", i)
	}
	return out
}

func TestQuietFleetStaysQuiet(t *testing.T) {
	c, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	deliverQuiet(t, c, names(4), 0, 200, rng)
	if c.Alarmed() {
		t.Fatalf("quiet heterogeneous fleet alarmed: %+v", c.Status())
	}
	if got := c.Status().FusedPeriods; got != 200 {
		t.Fatalf("fused %d periods, want 200", got)
	}
}

func TestDispersedFloodDetected(t *testing.T) {
	c, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ns := names(4)
	rng := rand.New(rand.NewSource(2))
	deliverQuiet(t, c, ns, 0, 40, rng)
	if c.Alarmed() {
		t.Fatal("alarmed during the quiet prefix")
	}
	// Flood onset: every site's observation shifts to the top of its
	// own historical range — individually mild (each x stays below the
	// local CUSUM's design offset of 0.35), jointly unmistakable.
	for p := 40; p < 60; p++ {
		for i, m := range ns {
			scale := 0.05 * float64(i+1)
			c.Ingest([]summary.PeriodSummary{mk(m, p, scale+0.01)})
		}
		if c.Alarmed() {
			al := c.FirstAlarm()
			if al == nil || al.Index < 40 {
				t.Fatalf("alarm outside the flood: %+v", al)
			}
			if p-40 > 8 {
				t.Fatalf("detection took %d periods, want <= 8", p-40)
			}
			return
		}
	}
	t.Fatalf("dispersed flood never detected: %+v", c.Status())
}

func TestLaggingMonitorExcludedAfterWindow(t *testing.T) {
	c, err := NewCoordinator(Config{StaleAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	ns := names(4)
	rng := rand.New(rand.NewSource(3))
	deliverQuiet(t, c, ns, 0, 10, rng)

	// m3 goes silent; the rest keep reporting. Fusion must stall only
	// until m3 falls behind the staleness window, then proceed without
	// it.
	for p := 10; p < 20; p++ {
		for _, m := range ns[:3] {
			c.Ingest([]summary.PeriodSummary{censored(m, p)})
		}
	}
	st := c.Status()
	if st.StaleCount != 1 {
		t.Fatalf("stale monitors = %d, want 1 (%+v)", st.StaleCount, c.Monitors())
	}
	// Fused frontier: periods 10..(20-StaleAfter-ish) fuse without m3.
	if st.FusedPeriods <= 10 {
		t.Fatalf("fusion stalled behind a dead monitor: %+v", st)
	}
	for _, m := range c.Monitors() {
		if m.Name == "m3" {
			if !m.Stale {
				t.Fatalf("m3 not marked stale: %+v", m)
			}
		} else if m.Stale {
			t.Fatalf("live monitor %s marked stale", m.Name)
		}
	}
}

func TestQuorumAlarmsWithDeadMonitor(t *testing.T) {
	c, err := NewCoordinator(Config{Quorum: 3, StaleAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	ns := names(4)
	rng := rand.New(rand.NewSource(4))
	deliverQuiet(t, c, ns, 0, 40, rng)

	// m3 dies at the flood onset; the other three carry it. The quorum
	// of 3 still holds, so the fused alarm must fire.
	for p := 40; p < 70; p++ {
		for i, m := range ns[:3] {
			scale := 0.05 * float64(i+1)
			c.Ingest([]summary.PeriodSummary{mk(m, p, scale+0.01)})
		}
	}
	if !c.Alarmed() {
		t.Fatalf("flood with 3/4 monitors alive never alarmed: %+v", c.Status())
	}
	loc := c.Localize()
	for _, m := range loc.Monitors {
		if m == "m3" {
			t.Fatalf("dead monitor localized as a carrier: %+v", loc)
		}
	}
	if len(loc.Monitors) == 0 {
		t.Fatalf("no monitors localized: %+v", loc)
	}
}

func TestBelowQuorumHolds(t *testing.T) {
	c, err := NewCoordinator(Config{Quorum: 3, StaleAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	ns := names(4)
	rng := rand.New(rand.NewSource(5))
	deliverQuiet(t, c, ns, 0, 10, rng)
	fusedBefore := c.Status().FusedPeriods

	// Only two monitors keep reporting: below the quorum of 3, fusion
	// must hold even after the silent pair go stale.
	for p := 10; p < 30; p++ {
		for i, m := range ns[:2] {
			scale := 0.05 * float64(i+1)
			c.Ingest([]summary.PeriodSummary{mk(m, p, scale+0.01)})
		}
	}
	st := c.Status()
	if st.FusedPeriods != fusedBefore {
		t.Fatalf("fused %d periods below quorum (had %d)", st.FusedPeriods, fusedBefore)
	}
	if c.Alarmed() {
		t.Fatal("alarmed on sub-quorum evidence")
	}
}

func TestDuplicateAndOutOfOrderIdempotent(t *testing.T) {
	// build delivers 50 periods to 3 monitors. Period 0 always goes in
	// canonical order (pinning monitor registration order, which fixes
	// the summation order); later period groups are optionally shuffled
	// across monitors, and dup late re-deliveries of already-fused
	// summaries are appended at the end. The fused output must be
	// identical to the in-order, duplicate-free reference.
	build := func(seed int64, shuffle bool, dup int) *Coordinator {
		c, err := NewCoordinator(Config{Expect: 3, StaleAfter: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ns := names(3)
		rng := rand.New(rand.NewSource(seed))
		var all []summary.PeriodSummary
		vals := rand.New(rand.NewSource(seed + 100))
		for p := 0; p < 50; p++ {
			group := make([]summary.PeriodSummary, 0, len(ns))
			for i, m := range ns {
				scale := 0.05 * float64(i+1)
				x := scale * vals.Float64()
				if p >= 30 {
					x = scale + 0.01
				}
				group = append(group, mk(m, p, x))
			}
			if shuffle && p > 0 {
				rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
			}
			for _, ps := range group {
				c.Ingest([]summary.PeriodSummary{ps})
			}
			all = append(all, group...)
		}
		for i := 0; i < dup; i++ {
			c.Ingest([]summary.PeriodSummary{all[rng.Intn(len(all))]})
		}
		return c
	}

	ref := build(7, false, 0)
	got := build(7, true, 40)
	refF, gotF := ref.Fused(0), got.Fused(0)
	if len(refF) != len(gotF) {
		t.Fatalf("fused %d vs %d periods", len(gotF), len(refF))
	}
	for i := range refF {
		if refF[i] != gotF[i] {
			t.Fatalf("fused[%d] differs under shuffle+dup:\n got %+v\nwant %+v", i, gotF[i], refF[i])
		}
	}
	var dups uint64
	for _, m := range got.Monitors() {
		dups += m.Duplicates
	}
	if dups != 40 {
		t.Fatalf("duplicates counted = %d, want 40", dups)
	}
}

func TestGapFillsOnSkippedPeriod(t *testing.T) {
	// m0 loses one uplink batch (period 5 never arrives) but keeps
	// reporting later periods. Fusion must not deadlock: once m0's
	// frontier moves past 5, the missing period fuses as a censored
	// gap, and the eventual late re-delivery counts as a duplicate.
	c, err := NewCoordinator(Config{StaleAfter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ns := names(3)
	rng := rand.New(rand.NewSource(9))
	deliverQuiet(t, c, ns, 0, 5, rng)
	// Period 5: m1 and m2 deliver; m0 skips it and delivers period 6.
	c.Ingest([]summary.PeriodSummary{censored("m1", 5), censored("m2", 5)})
	if got := c.Status().FusedPeriods; got != 5 {
		t.Fatalf("fused %d periods before m0 moved on, want 5", got)
	}
	c.Ingest([]summary.PeriodSummary{censored("m0", 6)})
	if got := c.Status().FusedPeriods; got != 6 {
		t.Fatalf("fused %d periods after the gap fill, want 6", got)
	}
	for _, m := range c.Monitors() {
		if m.Name == "m0" && m.Gaps != 1 {
			t.Fatalf("m0 gaps = %d, want 1", m.Gaps)
		}
	}
	// The lost batch finally shows up: too late, dropped as duplicate.
	c.Ingest([]summary.PeriodSummary{censored("m0", 5)})
	for _, m := range c.Monitors() {
		if m.Name == "m0" && m.Duplicates != 1 {
			t.Fatalf("m0 duplicates = %d, want 1", m.Duplicates)
		}
	}
}

func TestLocalizePicksCarryingSubset(t *testing.T) {
	c, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ns := names(4)
	rng := rand.New(rand.NewSource(8))
	deliverQuiet(t, c, ns, 0, 40, rng)

	// Only m0 and m1 carry the flood; their summaries name the
	// attacking /24s. m2/m3 stay quiet noise.
	for p := 40; p < 60; p++ {
		for i, m := range ns {
			scale := 0.05 * float64(i+1)
			if i < 2 {
				ps := mk(m, p, scale+0.01)
				ps.Sources = []summary.SourceDigest{{Key: prefix(t, fmt.Sprintf("10.%d.0.0/24", i)), SYNs: 100, Alarmed: true}}
				c.Ingest([]summary.PeriodSummary{ps})
			} else {
				c.Ingest([]summary.PeriodSummary{mk(m, p, scale*rng.Float64())})
			}
		}
	}
	if !c.Alarmed() {
		t.Fatalf("two-site flood never alarmed: %+v", c.Status())
	}
	loc := c.Localize()
	want := map[string]bool{"m0": true, "m1": true}
	for _, m := range loc.Monitors {
		if !want[m] {
			t.Fatalf("non-carrying monitor %s localized: %+v", m, loc)
		}
		delete(want, m)
	}
	if len(want) != 0 {
		t.Fatalf("carrying monitors missed: %v (got %+v)", want, loc)
	}
	if len(loc.Prefixes) != 2 {
		t.Fatalf("prefixes = %v, want the two attacking /24s", loc.Prefixes)
	}
}

func TestQuantileNeutralUntilMinHistory(t *testing.T) {
	m := &monitor{}
	if q := m.quantile(obs{x: 0.5}, 4); q != 0.5 {
		t.Fatalf("empty history quantile = %g, want neutral 0.5", q)
	}
	for i := 0; i < 8; i++ {
		m.push(obs{censored: true}, 64)
	}
	if q := m.quantile(obs{censored: true}, 4); q != 0.5 {
		t.Fatalf("all-censored quantile = %g, want neutral 0.5", q)
	}
	// An uncensored value above an all-censored history ranks high.
	if q := m.quantile(obs{x: 0.2}, 4); q <= 0.9 {
		t.Fatalf("uncensored above censored class = %g, want > 0.9", q)
	}
}
