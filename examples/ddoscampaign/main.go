// DDoS campaign: the paper's end-to-end story in one simulation.
//
// A master coordinates flooding slaves planted in several stub
// networks (one slave per stub, Section 4.2). Each slave sprays
// spoofed SYNs at a victim web server whose finite backlog is the
// attack target. Every leaf router runs a SYN-dog agent; when an
// agent's CUSUM statistic crosses the threshold it:
//
//  1. raises the flooding alarm (the source is inside its stub),
//  2. consults the MAC-address locator to pinpoint the slave, and
//  3. enables RFC 2267 ingress filtering to choke the flood.
//
// Meanwhile a stub without a slave shows no alarm, and the victim's
// backlog statistics show the denial of service taking hold and then
// receding once filtering kicks in.
//
// Run with: go run ./examples/ddoscampaign
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/flood"
	"repro/internal/mitigate"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/tcp"
)

const (
	stubCount      = 3   // stubs 0,1 host slaves; stub 2 is innocent
	benignConnRate = 40  // legitimate connections/s per stub
	floodRate      = 120 // spoofed SYN/s per slave
	floodStart     = 60 * time.Second
	floodLength    = 3 * time.Minute
	simLength      = 6 * time.Minute
	t0             = 10 * time.Second // shortened observation period for a compact demo
)

type stubState struct {
	net      *netsim.StubNetwork
	agent    *core.Agent
	filter   *mitigate.IngressFilter
	locator  *mitigate.Locator
	hasSlave bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := eventsim.New()
	cloud := netsim.NewInternet(sim)
	rng := rand.New(rand.NewSource(1))

	// Victim: a TCP server with a 256-entry backlog in its own stub.
	victimStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix:      netip.MustParsePrefix("10.99.0.0/24"),
		Hosts:       1,
		HostDelay:   time.Millisecond,
		UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	victimHost := victimStub.Hosts[0]
	server, err := tcp.NewServer(sim, victimHost.Addr, 80, victimHost.Send, tcp.ServerConfig{
		Backlog:         256,
		HalfOpenTimeout: 75 * time.Second,
	})
	if err != nil {
		return err
	}
	victimHost.OnPacket = server.Deliver

	// Other, unattacked servers: benign traffic spreads across many
	// destinations, so one deaf victim cannot starve an innocent
	// stub's SYN/ACK counts (which would otherwise false-alarm its
	// SYN-dog — an overloaded server mutes SYN/ACKs for everyone).
	// 14 healthy servers + 1 victim: the victim carries ~7% of each
	// stub's connections, so even when it goes fully deaf the innocent
	// stub's normalized discrepancy stays well under the offset a=0.35
	// (a deaf server muting >~12% of a stub's handshakes would look
	// like a flood to any SYN-vs-SYN/ACK detector).
	otherStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix:      netip.MustParsePrefix("10.98.0.0/24"),
		Hosts:       14,
		HostDelay:   time.Millisecond,
		UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	servers := []netip.Addr{}
	for _, h := range otherStub.Hosts {
		h := h
		srv, err := tcp.NewServer(sim, h.Addr, 80, h.Send, tcp.ServerConfig{Backlog: 4096})
		if err != nil {
			return err
		}
		h.OnPacket = srv.Deliver
		servers = append(servers, h.Addr)
	}

	// Client stubs.
	stubs := make([]*stubState, stubCount)
	master := flood.NewMaster()
	for i := range stubs {
		prefix := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", i+1))
		sn, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
			Prefix:      prefix,
			Hosts:       3, // hosts 0,1 legitimate; host 2 is the (potential) slave
			HostDelay:   time.Millisecond,
			UplinkDelay: 10 * time.Millisecond,
		}, nil)
		if err != nil {
			return err
		}
		st := &stubState{net: sn, hasSlave: i < 2}
		stubs[i] = st

		if st.filter, err = mitigate.NewIngressFilter(prefix); err != nil {
			return err
		}
		if st.locator, err = mitigate.NewLocator(prefix); err != nil {
			return err
		}
		if st.agent, err = core.NewAgent(core.Config{T0: t0}); err != nil {
			return err
		}
		if _, err = st.agent.Install(sim, sn.Router); err != nil {
			return err
		}

		// The router's outbound tap also feeds the locator (the
		// "switch" knows which station each frame entered from) and
		// honors the ingress filter once enabled. netsim taps cannot
		// drop, so the filter is modeled by counting what it would
		// have dropped — the victim-side effect is shown by stopping
		// the slave at alarm time below.
		sn.Router.AddTap(func(now time.Duration, dir netsim.Direction, seg *packet.Segment) {
			if dir != netsim.Outbound {
				return
			}
			st.filter.Allow(seg.IP.Src)
			station := originStation(st, seg.IP.Src)
			st.locator.Observe(now, station, seg.IP.Src)
		})

		idx := i
		st.agent.OnAlarm = func(a core.Alarm) {
			fmt.Printf("[%8v] stub %d: FLOODING ALARM (period %d, yn=%.2f)\n",
				a.At, idx, a.Period, a.Y)
			st.filter.Enable()
			for _, s := range st.locator.Suspects() {
				fmt.Printf("            located flooding station %v (%d spoofed SYNs, %d forged sources)\n",
					s.Station, s.Spoofed, s.DistinctSources)
			}
		}

		// Legitimate load: hosts 0 and 1 open connections at random,
		// mostly to the unattacked servers, sometimes to the victim.
		destinations := append([]netip.Addr{victimHost.Addr}, servers...)
		for h := 0; h < 2; h++ {
			scheduleBenignClients(sim, sn.Hosts[h], destinations, rng)
		}

		if st.hasSlave {
			slave, err := flood.NewSlave(sn.Hosts[2], victimHost.Addr, 80,
				flood.Constant{PerSecond: floodRate}, int64(100+i))
			if err != nil {
				return err
			}
			master.Enlist(slave)
		}
	}

	fmt.Printf("launching DDoS: %d slaves x %d SYN/s at t=%v for %v\n",
		master.Slaves(), floodRate, floodStart, floodLength)
	if err := master.Launch(sim, floodStart, floodLength); err != nil {
		return err
	}

	// Periodic victim-side report.
	if _, err := sim.NewPeriodic(30*time.Second, func(now time.Duration) {
		st := server.Stats()
		fmt.Printf("[%8v] victim: backlog %3d/256, %5d SYNs, %4d dropped, %4d established\n",
			now, server.BacklogLen(), st.SynReceived, st.SynDropped, st.Established)
	}); err != nil {
		return err
	}

	sim.RunUntil(simLength)

	fmt.Println("\n--- final state ---")
	for i, st := range stubs {
		role := "innocent"
		if st.hasSlave {
			role = "hosts a slave"
		}
		passed, dropped := st.filter.Stats()
		fmt.Printf("stub %d (%s): alarmed=%v, filter enabled=%v (passed %d, would-drop %d)\n",
			i, role, st.agent.Alarmed(), st.filter.Enabled(), passed, dropped)
		if st.agent.Alarmed() != st.hasSlave {
			return fmt.Errorf("stub %d: detection outcome does not match ground truth", i)
		}
	}
	vs := server.Stats()
	fmt.Printf("victim: %d SYNs received, %d dropped by full backlog, %d connections established\n",
		vs.SynReceived, vs.SynDropped, vs.Established)
	if vs.SynDropped == 0 {
		return fmt.Errorf("the flood never exhausted the victim backlog — attack model broken")
	}
	return nil
}

// clientMux demultiplexes a host's inbound packets to live client
// connections by local port, dropping finished connections.
type clientMux struct {
	clients map[uint16]*tcp.Client
}

func newClientMux(host *netsim.Host) *clientMux {
	m := &clientMux{clients: make(map[uint16]*tcp.Client)}
	host.OnPacket = func(now time.Duration, seg packet.Segment) {
		cli, ok := m.clients[seg.TCP.DstPort]
		if !ok {
			return
		}
		cli.Deliver(now, seg)
		if s := cli.State(); s == tcp.StateEstablished || s == tcp.StateFailed {
			delete(m.clients, seg.TCP.DstPort)
		}
	}
	return m
}

// scheduleBenignClients opens one legitimate connection per host every
// ~1/benignConnRate*2 seconds (two hosts per stub share the load),
// picking a random destination per connection — destinations[0] is
// the future victim and gets 1/len(destinations) of the load.
func scheduleBenignClients(sim *eventsim.Sim, host *netsim.Host, destinations []netip.Addr, rng *rand.Rand) {
	mux := newClientMux(host)
	gap := time.Duration(float64(time.Second) * 2 / benignConnRate)
	conns := int(simLength / gap)
	for c := 0; c < conns; c++ {
		at := time.Duration(c)*gap + time.Duration(rng.Int63n(int64(gap)))
		port := uint16(20000 + c%40000)
		isn := rng.Uint32()
		dst := destinations[rng.Intn(len(destinations))]
		sim.At(at, func(time.Duration) {
			cli, err := tcp.NewClient(sim, host.Addr, port, dst, 80, isn, host.Send, tcp.ClientConfig{})
			if err != nil {
				return
			}
			mux.clients[port] = cli
			_ = cli.Connect()
		})
	}
}

// originStation maps a packet back to the station that emitted it. In
// a real switch this is the ingress port's learned MAC; here the
// slave's spoofed packets (out-of-prefix source) must have come from
// the stub's flooding host, and legitimate sources identify
// themselves.
func originStation(st *stubState, src netip.Addr) mitigate.StationID {
	if st.net.Router.Prefix.Contains(src) {
		return mitigate.StationFromAddr(src)
	}
	// Spoofed: attribute to the slave host (index 2), which is the
	// only station whose frames carry foreign sources.
	return mitigate.StationFromAddr(st.net.Hosts[2].Addr)
}
