// Last mile vs first mile: the two deployment points of Figure 6
// watching the same distributed attack.
//
// A DDoS of total rate V is split evenly over A stub networks. The
// example runs:
//
//   - one first-mile SYN-dog (SYN vs SYN/ACK) inside a single
//     flooding stub, which sees only its slice fi = V/A;
//   - one last-mile agent (SYN vs FIN/RST) at the victim's router,
//     which sees the aggregate V;
//   - the PPM IP-traceback fallback the last-mile defense would need
//     to actually find the sources.
//
// The printout makes the paper's §1 argument concrete: the victim side
// detects instantly but must then spend hundreds of marked packets per
// attack path to learn where the flood comes from, while the source
// side, once it detects, has already located its flooding stub.
//
// Run with: go run ./examples/lastmile
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/iptrace"
	"repro/internal/trace"
)

const (
	totalRate = 300.0 // V, SYN/s at the victim
	stubs     = 30    // A; per-stub fi = 10 SYN/s
	onset     = 20 * time.Minute
	duration  = 10 * time.Minute
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	perStub := totalRate / stubs
	fmt.Printf("distributed attack: V=%.0f SYN/s over A=%d stubs (fi=%.0f SYN/s each)\n\n",
		totalRate, stubs, perStub)

	// --- first mile: one flooding stub's SYN-dog --------------------
	profile := trace.Auckland()
	profile.Span = 40 * time.Minute
	bg, err := trace.Generate(profile, 21)
	if err != nil {
		return err
	}
	fl, err := flood.GenerateTrace(flood.Config{
		Start: onset, Duration: duration,
		Pattern: flood.Constant{PerSecond: perStub},
		Victim:  netip.MustParseAddr("11.99.99.1"), VictimPort: 80, Seed: 5,
	})
	if err != nil {
		return err
	}
	mixed := trace.Merge("stub-view", bg, fl)
	mixed.Span = bg.Span

	firstMile, err := core.NewAgent(core.Config{})
	if err != nil {
		return err
	}
	if _, err := firstMile.ProcessTrace(mixed); err != nil {
		return err
	}
	onsetPeriod := int(onset / firstMile.Config().T0)
	fmt.Println("first-mile SYN-dog (inside one flooding stub, sees fi only):")
	if al := firstMile.FirstAlarm(); al != nil {
		fmt.Printf("  alarm at %v, %d periods after onset\n", al.At, al.Period-onsetPeriod)
		fmt.Println("  -> source located: it is THIS stub; ingress filtering can start now")
	} else {
		fmt.Println("  no alarm (fi below this site's detection floor)")
	}

	// --- last mile: victim-side agent sees the aggregate ------------
	victimView := bg.Flip() // reuse the stub's open/close mix as server traffic
	aggregate, err := flood.GenerateTrace(flood.Config{
		Start: onset, Duration: duration,
		Pattern: flood.Constant{PerSecond: totalRate},
		Victim:  netip.MustParseAddr("11.99.99.1"), VictimPort: 80, Seed: 6,
	})
	if err != nil {
		return err
	}
	victimMixed := trace.Merge("victim-view", victimView, aggregate.Flip())
	victimMixed.Span = victimView.Span

	lastMile, err := core.NewLastMileAgent(core.Config{WarmupPeriods: 10})
	if err != nil {
		return err
	}
	if _, err := lastMile.ProcessTrace(victimMixed); err != nil {
		return err
	}
	fmt.Println("\nlast-mile agent (victim router, sees aggregate V):")
	if al := lastMile.FirstAlarm(); al != nil {
		fmt.Printf("  alarm at %v, %d periods after onset\n", al.At, al.Period-onsetPeriod)
		fmt.Println("  -> but the sources are spoofed: WHO floods is still unknown")
	} else {
		fmt.Println("  no alarm (unexpected at aggregate rate)")
	}

	// --- the traceback bill the victim side now faces ---------------
	fmt.Println("\nPPM IP traceback the victim needs to find ONE source (edge sampling, p=1/25):")
	rng := rand.New(rand.NewSource(9))
	for _, hops := range []int{10, 20} {
		path, err := iptrace.LinearPath(hops)
		if err != nil {
			return err
		}
		campaign, err := iptrace.NewCampaign(path, 1.0/25, rng)
		if err != nil {
			return err
		}
		n, ok := campaign.PacketsToReconstruct(2_000_000)
		if !ok {
			return fmt.Errorf("traceback failed for %d hops", hops)
		}
		fmt.Printf("  %2d-router path: %d attack packets collected, and all %d routers must deploy marking\n",
			hops, n, hops)
	}
	fmt.Printf("  ... times %d paths (one per flooding stub), after the attack is already underway.\n", stubs)
	fmt.Println("\nconclusion: the last mile answers 'am I under attack?', the first mile answers 'from where?' for free.")
	return nil
}
