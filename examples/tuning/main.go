// Tuning: site-specific parameter selection (Section 4.2.3, Figure 9).
//
// The paper ships universal parameters (a=0.35, N=1.05) so one
// deployment works everywhere, then notes that an operator who knows
// their site can trade margin for sensitivity: at UNC, dropping to
// a=0.2, N=0.6 cuts the detectable flood rate from ≈37 SYN/s to
// ≈15 SYN/s without new false alarms.
//
// This example makes that trade-off measurable. For a grid of (a, N)
// pairs it reports:
//
//   - the theoretical sensitivity floor fmin = a·K̄/t0 (Eq. 8),
//   - false alarms over repeated flood-free traces,
//   - whether a 15 SYN/s flood (invisible to the default parameters)
//     is detected, and how fast.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/cusum"
	"repro/internal/experiment"
	"repro/internal/trace"
)

const (
	floodRate  = 15 // SYN/s — between the tuned (≈11-21) and default (≈37) floors
	seeds      = 5  // flood-free traces per false-alarm check
	spanFactor = 2  // trace span = spanFactor * 15 min, keeps runtime modest
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := trace.UNC()
	profile.Span = spanFactor * 15 * time.Minute

	// Estimate K̄ once from a flood-free trace so the theory columns
	// use the site's actual level.
	kBar, err := estimateKBar(profile)
	if err != nil {
		return err
	}
	fmt.Printf("site: %s-like, K-bar ≈ %.0f SYN/ACKs per 20 s\n\n", profile.Name, kBar)

	grid := []struct{ a, n float64 }{
		{0.35, 1.05}, // the paper's universal default
		{0.30, 0.90},
		{0.25, 0.75},
		{0.20, 0.60}, // the paper's UNC tuning
		{0.15, 0.45},
		{0.10, 0.30}, // aggressive: expect false alarms
	}

	fmt.Println("   a      N    fmin(SYN/s)  false-alarms  detects 15 SYN/s?  delay(t0)")
	fmt.Println("------  -----  -----------  ------------  -----------------  ---------")
	for _, g := range grid {
		design := cusum.Design{Offset: g.a, MinIncrease: 2 * g.a, Threshold: g.n}
		fmin := design.MinFloodRate(kBar, 20)

		falseAlarms, err := countFalseAlarms(profile, g.a, g.n)
		if err != nil {
			return err
		}

		res, err := experiment.Run(experiment.RunConfig{
			Profile:       profile,
			Agent:         core.Config{Offset: g.a, Threshold: g.n},
			Rate:          floodRate,
			Onset:         5 * time.Minute,
			FloodDuration: 10 * time.Minute,
			Seed:          77,
		})
		if err != nil {
			return err
		}
		detects := "no"
		delay := "-"
		if res.Detected {
			detects = "yes"
			delay = fmt.Sprintf("%d", res.DetectionPeriods)
		}
		fmt.Printf("%6.2f  %5.2f  %11.1f  %12d  %-17s  %9s\n",
			g.a, g.n, fmin, falseAlarms, detects, delay)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - smaller a lowers the detectable flood rate (Eq. 8) but eats margin;")
	fmt.Println("  - the paper's tuned point (0.20, 0.60) detects the 15 SYN/s flood with zero")
	fmt.Println("    false alarms, while the universal default cannot see it at all;")
	fmt.Println("  - push a too low and benign burstiness starts crossing N.")
	return nil
}

// estimateKBar runs the agent over a flood-free trace and returns its
// final EWMA estimate.
func estimateKBar(p trace.Profile) (float64, error) {
	tr, err := trace.Generate(p, 1)
	if err != nil {
		return 0, err
	}
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		return 0, err
	}
	if _, err := agent.ProcessTrace(tr); err != nil {
		return 0, err
	}
	return agent.KBar(), nil
}

// countFalseAlarms replays several flood-free traces through the
// detector with the given parameters.
func countFalseAlarms(p trace.Profile, a, n float64) (int, error) {
	alarms := 0
	for seed := int64(1); seed <= seeds; seed++ {
		tr, err := trace.Generate(p, seed)
		if err != nil {
			return 0, err
		}
		agent, err := core.NewAgent(core.Config{Offset: a, Threshold: n})
		if err != nil {
			return 0, err
		}
		if _, err := agent.ProcessTrace(tr); err != nil {
			return 0, err
		}
		if agent.Alarmed() {
			alarms++
		}
	}
	return alarms, nil
}
