// Leaf router: SYN-dog attached to a live, event-driven router.
//
// Unlike the trace-driven experiments, this example wires the agent
// directly onto a simulated leaf router's interface taps (Figure 2 of
// the paper): every packet crossing the inbound or outbound interface
// is classified from its raw bytes with the paper's three-step
// classifier and counted by the matching Sniffer. The observation
// timer runs on the simulation clock.
//
// Phase 1 is normal operation (remote servers answer every SYN);
// phase 2 adds a low-rate spoofed flood from an inside host. The
// program prints the per-period CUSUM state so the accumulation that
// precedes the alarm is visible.
//
// Run with: go run ./examples/leafrouter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/flood"
	"repro/internal/netsim"
	"repro/internal/packet"
)

const (
	t0         = 10 * time.Second
	benignRate = 30 // legitimate connections/s
	floodRate  = 25 // spoofed SYN/s — below the benign rate, yet detected
	floodStart = 2 * time.Minute
	simLength  = 5 * time.Minute
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := eventsim.New()
	cloud := netsim.NewInternet(sim)
	rng := rand.New(rand.NewSource(3))

	stub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix:      netip.MustParsePrefix("10.1.0.0/24"),
		Hosts:       2, // host 0 legitimate, host 1 compromised
		HostDelay:   time.Millisecond,
		UplinkDelay: 15 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}

	// A well-behaved remote server farm: answers every SYN.
	remote, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix:      netip.MustParsePrefix("10.9.0.0/24"),
		Hosts:       1,
		HostDelay:   time.Millisecond,
		UplinkDelay: 15 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	farm := remote.Hosts[0]
	farm.OnPacket = func(_ time.Duration, seg packet.Segment) {
		if seg.Kind() == packet.KindSYN {
			farm.Send(packet.Build(seg.IP.Dst, seg.IP.Src, seg.TCP.DstPort, seg.TCP.SrcPort,
				1, seg.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
		}
	}

	// SYN-dog on the leaf router, with raw-byte classification: the
	// tap marshals each segment and classifies it exactly as the
	// paper's router fast path would.
	agent, err := core.NewAgent(core.Config{T0: t0})
	if err != nil {
		return err
	}
	var buf []byte
	stub.Router.AddTap(func(_ time.Duration, dir netsim.Direction, seg *packet.Segment) {
		buf = seg.Marshal(buf[:0])
		agent.Observe(dir, packet.Classify(buf))
	})
	ticker, err := sim.NewPeriodic(t0, func(now time.Duration) {
		r := agent.EndPeriod(now)
		mark := ""
		if r.Alarmed {
			mark = "  *** ALARM ***"
		}
		fmt.Printf("[%8v] period %2d: outSYN %4d, inSYN/ACK %4d, K=%6.1f, X=%+.3f, y=%.3f%s\n",
			now, r.Index, r.OutSYN, r.InSYNACK, r.K, r.X, r.Y, mark)
	})
	if err != nil {
		return err
	}
	defer ticker.Stop()

	agent.OnAlarm = func(a core.Alarm) {
		fmt.Printf("\n>>> SYN-dog alarm at %v: spoofed flood is inside 10.1.0.0/24 <<<\n\n", a.At)
	}

	// Legitimate clients on host 0.
	legit := stub.Hosts[0]
	gap := time.Second / benignRate
	for c := 0; c < int(simLength/gap); c++ {
		c := c
		at := time.Duration(c) * gap
		sim.At(at, func(time.Duration) {
			legit.Send(packet.Build(legit.Addr, farm.Addr,
				uint16(10000+c%50000), 80, rng.Uint32(), 0, packet.FlagSYN))
		})
	}
	// The farm's SYN/ACKs come back to host 0; acknowledge them so the
	// exchange looks like full handshakes (ACKs are KindOther and do
	// not influence the detector).
	legit.OnPacket = func(_ time.Duration, seg packet.Segment) {
		if seg.Kind() == packet.KindSYNACK {
			legit.Send(packet.Build(seg.IP.Dst, seg.IP.Src, seg.TCP.DstPort, seg.TCP.SrcPort,
				seg.TCP.Ack, seg.TCP.Seq+1, packet.FlagACK))
		}
	}

	// The compromised host floods with spoofed sources from t=2m.
	slave, err := flood.NewSlave(stub.Hosts[1], farm.Addr, 80,
		flood.Constant{PerSecond: floodRate}, 99)
	if err != nil {
		return err
	}
	master := flood.NewMaster()
	master.Enlist(slave)
	if err := master.Launch(sim, floodStart, simLength-floodStart); err != nil {
		return err
	}

	sim.RunUntil(simLength)

	if !agent.Alarmed() {
		return fmt.Errorf("flood not detected")
	}
	al := agent.FirstAlarm()
	onset := int(floodStart / t0)
	fmt.Printf("detection time: %d observation periods after onset (flood %d SYN/s vs %d legit conn/s)\n",
		al.Period-onset, floodRate, benignRate)
	fmt.Printf("flood SYNs emitted: %d; router outbound/inbound: ", master.TotalSent())
	in, out, local, unroutable := stub.Router.Counters()
	fmt.Printf("in=%d out=%d local=%d unroutable=%d\n", in, out, local, unroutable)
	return nil
}
