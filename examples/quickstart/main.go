// Quickstart: the smallest end-to-end SYN-dog run.
//
// It synthesizes Auckland-like background traffic, mixes in a
// 10-minute SYN flood, replays the mix through a SYN-dog agent with
// the paper's universal parameters (t0=20s, a=0.35, N=1.05), and
// prints the alarm.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Background traffic: a 40-minute Auckland-like capture
	//    (K-bar ≈ 100 SYN/ACKs per 20 s, so the detection floor is
	//    fmin = 0.35*100/20 ≈ 1.75 SYN/s).
	profile := trace.Auckland()
	profile.Span = 40 * time.Minute
	background, err := trace.Generate(profile, 42)
	if err != nil {
		return err
	}

	// 2. The attack: one flooding source in this stub network sending
	//    5 spoofed SYN/s at a victim for 10 minutes, starting at 15:00.
	attack, err := flood.GenerateTrace(flood.Config{
		Start:      15 * time.Minute,
		Duration:   10 * time.Minute,
		Pattern:    flood.Constant{PerSecond: 5},
		Victim:     netip.MustParseAddr("11.99.99.1"),
		VictimPort: 80,
		Seed:       7,
	})
	if err != nil {
		return err
	}
	mixed := trace.Merge("auckland+flood", background, attack)
	mixed.Span = background.Span

	// 3. The detector: paper-default SYN-dog.
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		return err
	}
	agent.OnAlarm = func(a core.Alarm) {
		fmt.Printf(">>> FLOODING ALARM at t=%v (period %d, yn=%.3f)\n", a.At, a.Period, a.Y)
		fmt.Println(">>> the flooding source is INSIDE this stub network — no IP traceback needed")
	}

	if _, err := agent.ProcessTrace(mixed); err != nil {
		return err
	}

	// 4. Report.
	fmt.Printf("\nprocessed %d observation periods (t0 = %v), K-bar = %.1f\n",
		len(agent.Reports()), agent.Config().T0, agent.KBar())
	al := agent.FirstAlarm()
	if al == nil {
		return fmt.Errorf("flood was not detected — this should not happen at 5 SYN/s")
	}
	onsetPeriod := int((15 * time.Minute) / agent.Config().T0)
	fmt.Printf("flood onset period %d, alarm period %d -> detection time %d observation periods (%v)\n",
		onsetPeriod, al.Period, al.Period-onsetPeriod,
		time.Duration(al.Period-onsetPeriod)*agent.Config().T0)
	des := agent.Design()
	fmt.Printf("theory: fmin = %.2f SYN/s, conservative detection bound = %.1f periods\n",
		des.MinFloodRate(agent.KBar(), agent.Config().T0.Seconds()),
		des.DetectionTimeFor(5*agent.Config().T0.Seconds()/agent.KBar()))
	return nil
}
