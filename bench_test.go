// Package repro's root benchmark suite: one benchmark per table and
// figure of the paper (regenerating the artifact end to end through
// the same registry the experiment binary uses), plus micro-benchmarks
// of the per-packet and per-period hot paths that establish the
// "low computation overhead" claim of Section 1.
//
// The artifact benchmarks use experiment fast mode so a full
// `go test -bench=.` completes in minutes; run cmd/experiment for
// paper-fidelity spans and Monte-Carlo counts.
package repro

import (
	"fmt"
	"io"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/cusum"
	"repro/internal/eventsim"
	"repro/internal/experiment"
	"repro/internal/flood"
	"repro/internal/fusion"
	"repro/internal/ingest"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pcapng"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// benchOpts are the fast-mode options shared by the artifact benches.
// Parallelism is pinned to 1 so the per-iteration cost measures the
// sequential baseline; the *Parallel variants override it.
func benchOpts(i int) experiment.Options {
	return experiment.Options{Seed: int64(i + 1), Runs: 2, Fast: true, Parallelism: 1}
}

// runArtifact executes one registered experiment per iteration and
// reports artifact count so the compiler cannot elide the work.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	runArtifactOpts(b, id, benchOpts)
}

func runArtifactOpts(b *testing.B, id string, opts func(i int) experiment.Options) {
	b.Helper()
	e, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	total := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arts, err := e.Func(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		total += len(arts)
	}
	if total == 0 {
		b.Fatal("no artifacts")
	}
}

// BenchmarkTable1TraceFeatures regenerates Table 1 (trace summary).
func BenchmarkTable1TraceFeatures(b *testing.B) { runArtifact(b, "table1") }

// BenchmarkFig3Dynamics regenerates Figure 3 (LBL and Harvard
// SYN-SYN/ACK dynamics).
func BenchmarkFig3Dynamics(b *testing.B) { runArtifact(b, "fig3") }

// BenchmarkFig4Dynamics regenerates Figure 4 (UNC and Auckland
// dynamics).
func BenchmarkFig4Dynamics(b *testing.B) { runArtifact(b, "fig4") }

// BenchmarkFig5NormalOperation regenerates Figure 5 (CUSUM statistic
// on flood-free traffic; zero false alarms).
func BenchmarkFig5NormalOperation(b *testing.B) { runArtifact(b, "fig5") }

// BenchmarkFig6Architecture smoke-runs the Figure 6 mixing harness.
func BenchmarkFig6Architecture(b *testing.B) { runArtifact(b, "fig6") }

// BenchmarkTable2UNCDetection regenerates Table 2 (detection
// probability and time at UNC across fi = 37..120 SYN/s).
func BenchmarkTable2UNCDetection(b *testing.B) { runArtifact(b, "table2") }

// BenchmarkTable2UNCDetectionParallel regenerates Table 2 with the
// Monte-Carlo cells fanned over 4 workers. The artifact bytes are
// identical to the sequential benchmark (same seed derivation); on a
// multi-core host the wall clock is the speedup over
// BenchmarkTable2UNCDetection.
func BenchmarkTable2UNCDetectionParallel(b *testing.B) {
	runArtifactOpts(b, "table2", func(i int) experiment.Options {
		o := benchOpts(i)
		o.Parallelism = 4
		return o
	})
}

// BenchmarkFig7UNCSensitivity regenerates Figure 7 (yn dynamics at
// UNC under fi = 45/60/80 SYN/s floods).
func BenchmarkFig7UNCSensitivity(b *testing.B) { runArtifact(b, "fig7") }

// BenchmarkTable3AucklandDetection regenerates Table 3 (detection
// performance at Auckland across fi = 1.5..10 SYN/s).
func BenchmarkTable3AucklandDetection(b *testing.B) { runArtifact(b, "table3") }

// BenchmarkFig8AucklandSensitivity regenerates Figure 8 (yn dynamics
// at Auckland under fi = 2/5/10 SYN/s floods).
func BenchmarkFig8AucklandSensitivity(b *testing.B) { runArtifact(b, "fig8") }

// BenchmarkFig9TunedSensitivity regenerates Figure 9 (site-tuned
// a=0.2/N=0.6 detecting a 15 SYN/s flood the defaults cannot).
func BenchmarkFig9TunedSensitivity(b *testing.B) { runArtifact(b, "fig9") }

// --- counts fast path vs record-level replay ---------------------------

// sweepBenchConfig is a Table 2-shaped sweep (12 Monte-Carlo cells on
// a 15-minute UNC background) used to compare the two execution paths;
// both produce byte-identical Performance rows. The background is
// preset so the measured work is the sweep itself — aggregation plus
// the per-cell loop — not trace synthesis, which both paths share
// unchanged.
func sweepBenchConfig(recordLevel bool) experiment.SweepConfig {
	bg, _ := cellBenchInputs()
	p := trace.UNC()
	p.Span = bg.Span
	return experiment.SweepConfig{
		Profile:       p,
		Background:    bg,
		Agent:         core.Config{},
		Rates:         []float64{45, 60, 80},
		Runs:          4,
		OnsetMin:      2 * time.Minute,
		OnsetMax:      4 * time.Minute,
		FloodDuration: 8 * time.Minute,
		Seed:          1,
		Parallelism:   1,
		RecordLevel:   recordLevel,
	}
}

func benchmarkSweep(b *testing.B, recordLevel bool) {
	cfg := sweepBenchConfig(recordLevel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfs, err := experiment.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(perfs) != len(cfg.Rates) {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkSweepFastPath runs the sweep on the default counts path:
// the background is aggregated once, each cell bins the flood arrivals
// and feeds per-period counts straight to the detector.
func BenchmarkSweepFastPath(b *testing.B) { benchmarkSweep(b, false) }

// BenchmarkSweepRecordLevel runs the identical sweep through the
// record-level pipeline: per cell, materialize the flood as records,
// merge into the background and replay packet by packet.
func BenchmarkSweepRecordLevel(b *testing.B) { benchmarkSweep(b, true) }

// cellBench* hold the shared sweep inputs for the per-cell benchmarks,
// built once per test binary so -count=N reruns and the record/fast
// pair measure the same background.
var (
	cellBenchOnce   sync.Once
	cellBenchBG     *trace.Trace
	cellBenchCounts *trace.PeriodCounts
)

func cellBenchInputs() (*trace.Trace, *trace.PeriodCounts) {
	cellBenchOnce.Do(func() {
		p := trace.UNC()
		p.Span = 15 * time.Minute
		bg, err := trace.Generate(p, 1)
		if err != nil {
			panic(err)
		}
		counts, err := bg.Aggregate(core.DefaultObservationPeriod)
		if err != nil {
			panic(err)
		}
		cellBenchBG, cellBenchCounts = bg, counts
	})
	return cellBenchBG, cellBenchCounts
}

var cellBenchCfg = experiment.RunConfig{
	Agent:         core.Config{},
	Rate:          60,
	Onset:         3 * time.Minute,
	FloodDuration: 8 * time.Minute,
	Seed:          7,
}

// BenchmarkRunCellFastPath measures one Monte-Carlo cell exactly as
// Sweep's per-cell loop runs it: a pooled Runner over the shared
// background counts — restart the agent, bin the flood into the
// scratch overlay, replay the counts.
func BenchmarkRunCellFastPath(b *testing.B) {
	_, counts := cellBenchInputs()
	r, err := experiment.NewRunner(core.Config{}, counts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(cellBenchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.AlarmPeriod < 0 {
			b.Fatal("flood not detected")
		}
	}
}

// BenchmarkRunCellRecordLevel measures the same cell on the record
// path: flood record generation + merge + full replay of every packet.
func BenchmarkRunCellRecordLevel(b *testing.B) {
	bg, _ := cellBenchInputs()
	cfg := cellBenchCfg
	cfg.Background = bg
	cfg.RecordLevel = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.AlarmPeriod < 0 {
			b.Fatal("flood not detected")
		}
	}
}

// --- per-source attribution engine -------------------------------------

// BenchmarkSourceTrack measures the keyed engine's per-record cost
// across shard counts and distinct-source populations. The tracker
// holds the default 1024 CUSUM states; the 10k- and 1M-source streams
// therefore run in the steady eviction regime, where Space-Saving
// admission recycles states in place — the records/s figure is the
// sustained keyed-demux rate and allocs/op must stay at zero.
func BenchmarkSourceTrack(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		for _, nsrc := range []int{10_000, 1_000_000} {
			b.Run(fmt.Sprintf("shards=%d/sources=%d", shards, nsrc), func(b *testing.B) {
				tk, err := sourcetrack.New(sourcetrack.Config{
					KeyBits: 32,
					Shards:  shards,
					Agent:   core.Config{},
				})
				if err != nil {
					b.Fatal(err)
				}
				dst := netip.MustParseAddr("11.99.99.1")
				recs := make([]trace.Record, nsrc)
				for i := range recs {
					recs[i] = trace.Record{
						Kind: packet.KindSYN,
						Dir:  trace.DirOut,
						Src:  netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
						Dst:  dst,
					}
				}
				// One full pass fills the tracker to capacity so the
				// timed loop measures steady state, not map growth.
				for _, r := range recs {
					tk.Observe(r)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tk.Observe(recs[i%nsrc])
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// --- multi-vantage fusion ----------------------------------------------

// BenchmarkFusion measures the coordinator's steady-state ingest cost:
// four monitors streaming censored summaries in period order, the
// coordinator advancing the fusion frontier (rank normalization over
// the sliding histories, fused CUSUM, localization bookkeeping) once
// per complete period. The periods/s metric is the sustained fusion
// rate; one period of wall clock buys t0 = 20s of fleet coverage, so
// the headroom is ~6 orders of magnitude.
func BenchmarkFusion(b *testing.B) {
	const monitors, periods = 4, 512
	names := []string{"LBL", "Harvard", "UNC", "Auckland"}
	batches := make([][]summary.PeriodSummary, 0, periods)
	for p := 0; p < periods; p++ {
		batch := make([]summary.PeriodSummary, monitors)
		for m := range batch {
			// Deterministic quiet-looking X with per-monitor phase; a
			// few digests so localization bookkeeping is exercised.
			x := 0.1 + 0.05*float64((p*7+m*13)%11)/10
			batch[m] = summary.PeriodSummary{
				Monitor:  names[m],
				Index:    p,
				OutSYN:   1000,
				InSYNACK: 900,
				K:        45,
				X:        x,
				Sources: []summary.SourceDigest{
					{Key: netip.MustParsePrefix("198.18.0.0/24"), SYNs: 40, X: x},
					{Key: netip.MustParsePrefix("198.18.1.0/24"), SYNs: 30, X: x},
				},
			}
		}
		batches = append(batches, batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord, err := fusion.NewCoordinator(fusion.Config{Expect: monitors})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			coord.Ingest(batch)
		}
		if got := len(coord.Fused(0)); got != periods {
			b.Fatalf("fused %d periods, want %d", got, periods)
		}
	}
	b.ReportMetric(float64(periods)*float64(b.N)/b.Elapsed().Seconds(), "periods/s")
}

// --- hot-path micro-benchmarks -----------------------------------------

// BenchmarkPacketClassification measures the paper's three-step
// classifier on raw bytes — the per-packet cost at the leaf router.
func BenchmarkPacketClassification(b *testing.B) {
	seg := packet.Build(
		netip.MustParseAddr("10.1.0.5"), netip.MustParseAddr("11.0.0.1"),
		40000, 80, 1, 0, packet.FlagSYN)
	raw := seg.Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if packet.Classify(raw) != packet.KindSYN {
			b.Fatal("misclassified")
		}
	}
}

// BenchmarkSnifferCount measures the per-packet counter update.
func BenchmarkSnifferCount(b *testing.B) {
	s := core.NewSniffer(netsim.Outbound)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Count(packet.KindSYN)
	}
}

// BenchmarkCusumObserve measures one CUSUM update — the entire
// per-period decision cost (two additions and a comparison).
func BenchmarkCusumObserve(b *testing.B) {
	d := cusum.NewDefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(0.01)
	}
}

// BenchmarkAgentEndPeriod measures a full observation-period close:
// sniffer drain, EWMA update, normalization, CUSUM, report append.
func BenchmarkAgentEndPeriod(b *testing.B) {
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agent.Observe(netsim.Outbound, packet.KindSYN)
		agent.Observe(netsim.Inbound, packet.KindSYNACK)
		agent.EndPeriod(time.Duration(i) * time.Second)
	}
}

// BenchmarkAgentObserveTap measures the full live tap path:
// marshal -> classify -> count, i.e. what the router pays per packet
// with SYN-dog installed.
func BenchmarkAgentObserveTap(b *testing.B) {
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	seg := packet.Build(
		netip.MustParseAddr("10.1.0.5"), netip.MustParseAddr("11.0.0.1"),
		40000, 80, 1, 0, packet.FlagSYN)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = seg.Marshal(buf[:0])
		agent.Observe(netsim.Outbound, packet.Classify(buf))
	}
}

// BenchmarkTraceGeneration measures synthesizing one minute of
// UNC-level background traffic (~6.5k connections).
func BenchmarkTraceGeneration(b *testing.B) {
	p := trace.UNC()
	p.Span = time.Minute
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Records) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkProcessTrace measures replaying a 10-minute Auckland trace
// through the agent (the trace-driven experiment inner loop).
func BenchmarkProcessTrace(b *testing.B) {
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	tr, err := trace.Generate(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent, err := core.NewAgent(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agent.ProcessTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- streaming ingestion -----------------------------------------------

// streamBench holds the shared fixture for the streaming-ingestion
// benchmarks: a 10-minute Auckland trace exported once per container
// format (libpcap, binary, CSV, tcpdump text). TestMain removes the
// files after the run.
var streamBench struct {
	sync.Once
	paths   map[string]string // extension -> temp file path
	records int
	err     error
}

// streamBenchFile returns the fixture capture with the given extension
// (".pcap", ".trace", ".csv", ".txt") and its classified record count.
func streamBenchFile(b *testing.B, ext string) (string, int) {
	b.Helper()
	streamBench.Do(func() {
		p := trace.Auckland()
		p.Span = 10 * time.Minute
		tr, err := trace.Generate(p, 1)
		if err != nil {
			streamBench.err = err
			return
		}
		writers := map[string]func(io.Writer, *trace.Trace) error{
			".pcap":  trace.WritePcap,
			".trace": trace.WriteBinary,
			".csv":   trace.WriteCSV,
			".txt":   trace.WriteTcpdump,
		}
		streamBench.paths = make(map[string]string, len(writers))
		for ext, write := range writers {
			f, err := os.CreateTemp("", "stream-bench-*"+ext)
			if err != nil {
				streamBench.err = err
				return
			}
			streamBench.paths[ext] = f.Name()
			if err := write(f, tr); err != nil {
				f.Close()
				streamBench.err = err
				return
			}
			if err := f.Close(); err != nil {
				streamBench.err = err
				return
			}
		}
		// Prescan for the classified record count — the same O(1) pass
		// syndogd runs before streaming a capture.
		pf, err := os.Open(streamBench.paths[".pcap"])
		if err != nil {
			streamBench.err = err
			return
		}
		info, err := ingest.PcapInfo(pf)
		pf.Close()
		if err != nil {
			streamBench.err = err
			return
		}
		streamBench.records = info.Records
	})
	if streamBench.err != nil {
		b.Fatal(streamBench.err)
	}
	path, ok := streamBench.paths[ext]
	if !ok {
		b.Fatalf("no %s fixture", ext)
	}
	return path, streamBench.records
}

func streamBenchPcap(b *testing.B) (string, int) {
	return streamBenchFile(b, ".pcap")
}

func TestMain(m *testing.M) {
	code := m.Run()
	for _, path := range streamBench.paths {
		os.Remove(path)
	}
	os.Exit(code)
}

// benchStreamingIngest measures the full streaming pipeline over one
// fixture format — open, classify, aggregate, detect — exactly as the
// binaries construct it. chunk picks the pipeline's batch size
// (0 = DefaultChunk, negative = the single-record compatibility loop);
// arena, when non-nil, recycles chunk buffers across iterations. The
// records/s metric is the sustained ingest rate of one detector.
func benchStreamingIngest(b *testing.B, ext string, chunk int, arena *ingest.Arena) {
	b.Helper()
	path, records := streamBenchFile(b, ext)
	prefix := netip.MustParsePrefix("130.216.0.0/16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent, err := core.NewAgent(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		src, _, err := ingest.Open(path, prefix)
		if err != nil {
			b.Fatal(err)
		}
		p := &ingest.Pipeline{
			Source:   src,
			Detector: ingest.WrapAgent(agent),
			T0:       core.DefaultObservationPeriod,
			Chunk:    chunk,
			Arena:    arena,
		}
		if err := p.Run(); err != nil {
			b.Fatal(err)
		}
		if err := src.Close(); err != nil {
			b.Fatal(err)
		}
		if len(agent.Reports()) == 0 {
			b.Fatal("no periods")
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkStreamingIngestPcap is the headline ingest benchmark: the
// batch pipeline over a pcap capture, which never materializes.
func BenchmarkStreamingIngestPcap(b *testing.B) {
	benchStreamingIngest(b, ".pcap", 0, nil)
}

// BenchmarkStreamingIngestBinary streams the compact binary container.
func BenchmarkStreamingIngestBinary(b *testing.B) {
	benchStreamingIngest(b, ".trace", 0, nil)
}

// BenchmarkStreamingIngestCSV streams the text container; the line
// scanner and field parser dominate.
func BenchmarkStreamingIngestCSV(b *testing.B) {
	benchStreamingIngest(b, ".csv", 0, nil)
}

// BenchmarkStreamingIngestTcpdump imports tcpdump -n text. This reader
// materializes (the text format needs a post-parse sort), so the
// figure includes the parse and sort, then a batch replay of the
// in-memory records.
func BenchmarkStreamingIngestTcpdump(b *testing.B) {
	benchStreamingIngest(b, ".txt", 0, nil)
}

// BenchmarkBatchIngest pins the batch machinery itself on the pcap
// path: chunk-size scaling, the arena's steady-state reuse, and the
// single-record compatibility loop the batch path replaced (record —
// the old pipeline, what the 5× gate is measured against).
func BenchmarkBatchIngest(b *testing.B) {
	b.Run("record", func(b *testing.B) { benchStreamingIngest(b, ".pcap", -1, nil) })
	for _, chunk := range []int{64, 1024, 8192} {
		chunk := chunk
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			benchStreamingIngest(b, ".pcap", chunk, ingest.NewArena(chunk))
		})
	}
}

// BenchmarkFloodGeneration measures synthesizing a 10-minute
// 120 SYN/s flood trace.
func BenchmarkFloodGeneration(b *testing.B) {
	cfg := flood.Config{
		Start:      0,
		Duration:   10 * time.Minute,
		Pattern:    flood.Constant{PerSecond: 120},
		Victim:     netip.MustParseAddr("11.99.99.1"),
		VictimPort: 80,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		tr, err := flood.GenerateTrace(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Records) == 0 {
			b.Fatal("empty flood")
		}
	}
}

// BenchmarkFrameParse measures the live capture subsystem's per-frame
// hot path — link-layer stripping, classification, TCP decode,
// direction inference — over the three link framings the parser
// accepts. This is the cost every sniffed packet pays before it
// becomes a trace.Record, so it gates with the other hot paths.
func BenchmarkFrameParse(b *testing.B) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("130.216.0.9")
	prefix := netip.MustParsePrefix("130.216.0.0/16")
	seg := packet.Build(src, dst, 1234, 80, 7, 0, packet.FlagSYN)
	raw := seg.Marshal(nil)
	eth := append(append(make([]byte, 0, 14+len(raw)), make([]byte, 12)...), 0x08, 0x00)
	eth = append(eth, raw...)
	vlan := append(append(make([]byte, 0, 18+len(raw)), make([]byte, 12)...), 0x81, 0x00, 0x00, 0x05, 0x08, 0x00)
	vlan = append(vlan, raw...)

	cases := []struct {
		name     string
		linkType uint32
		data     []byte
	}{
		{"raw", pcapng.LinkTypeRaw, raw},
		{"eth", pcapng.LinkTypeEthernet, eth},
		{"vlan", pcapng.LinkTypeEthernet, vlan},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			parser, err := capture.NewFrameParser(c.linkType, prefix)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			parsed := 0
			for i := 0; i < b.N; i++ {
				rec, ok := parser.Parse(time.Duration(i), c.data)
				if ok && rec.Kind == packet.KindSYN {
					parsed++
				}
			}
			if parsed != b.N {
				b.Fatalf("parsed %d of %d frames", parsed, b.N)
			}
		})
	}
}

// BenchmarkTwoQueueAccept measures the kernel victim model's two-queue
// path end to end: SYN into the bounded SYN queue, SYN/ACK out, final
// ACK into the bounded accept queue, application drain on the accept
// timer — with enough concurrent handshakes that both overflow paths
// are exercised, the regime the victim experiment scores.
func BenchmarkTwoQueueAccept(b *testing.B) {
	const conns = 512
	victim := netip.MustParseAddr("11.99.99.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := eventsim.New()
		var server *tcp.Server
		send := func(seg packet.Segment) {
			if seg.Kind() != packet.KindSYNACK {
				return
			}
			ack := packet.Build(seg.IP.Dst, seg.IP.Src, seg.TCP.DstPort, seg.TCP.SrcPort,
				seg.TCP.Ack, seg.TCP.Seq+1, packet.FlagACK)
			sim.After(time.Millisecond, func(now time.Duration) { server.Deliver(now, ack) })
		}
		server, err := tcp.NewServer(sim, victim, 80, send, tcp.ServerConfig{AcceptBacklog: 64})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < conns; c++ {
			addr := netip.AddrFrom4([4]byte{10, 1, byte(c >> 8), byte(c)})
			syn := packet.Build(addr, victim, uint16(1024+c), 80, 1, 0, packet.FlagSYN)
			if _, err := sim.At(time.Duration(c)*2*time.Millisecond,
				func(now time.Duration) { server.Deliver(now, syn) }); err != nil {
				b.Fatal(err)
			}
		}
		sim.Run()
		st := server.Stats()
		if st.Accepted == 0 || st.ListenOverflows == 0 {
			b.Fatalf("accept path not exercised: %+v", st)
		}
	}
	b.ReportMetric(float64(conns)*float64(b.N)/b.Elapsed().Seconds(), "conns/s")
}

// Example-level sanity: the micro-bench file participates in `go test`
// too, keeping the root package non-empty for test tooling.
func TestRegistryMatchesDesignDoc(t *testing.T) {
	want := []string{"table1", "fig3", "fig4", "fig5", "fig6", "table2", "fig7", "table3", "fig8", "fig9"}
	reg := experiment.Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry size %d, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
	}
}
