# SYN-dog reproduction — convenience targets.
GO ?= go

.PHONY: all build build-live vet test race check bench bench-gate examples experiments fast-experiments ablations evasion distributed victim fuzz soak soak-short clean

all: build vet test

# The full pre-merge gate: static checks, the test suite, the race
# detector, the seeded adversarial evasion matrix, the distributed
# detection smoke, the victim two-queue race, a short-budget soak of
# the multi-agent daemon, and the hot-path bench-regression gate in
# one target.
check: vet test race evasion distributed victim soak-short bench-gate

build:
	$(GO) build ./...

# The AF_PACKET live-capture leg is gated behind the "live" build tag
# (linux only); this compiles it so the tagged files cannot rot.
build-live:
	$(GO) build -tags live ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector: exercises the experiment worker
# pool, the parallel fleet trials, the syndogd replay/handler locking,
# and the sharded source tracker under concurrent ChanSource feeds.
race:
	$(GO) test -race ./...

# Record the outputs the repository ships with.
record:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Root benchmark suite, 6 samples per benchmark, distilled into the
# committed BENCH_pr10.json baseline (median ns/op, B/op, allocs/op
# per benchmark) so perf changes diff against a recorded trajectory.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=6 . | tee BENCH_pr10.raw
	$(GO) run ./cmd/benchjson -o BENCH_pr10.json < BENCH_pr10.raw
	rm -f BENCH_pr10.raw

# Enforced regression gate over the hot-path benchmarks: rerun them
# (medians of GATECOUNT samples) and diff against the committed
# baseline via benchjson -baseline. Fails on a >GATETOL ns/op slowdown
# or any allocs/op growth on the gated set; other benchmarks are
# reported informationally. Raise GATETOL on noisy shared hardware.
GATECOUNT ?= 3
GATETOL ?= 0.10
GATEHOT ?= Ingest|BatchIngest|SweepFastPath|RunCellFastPath|Fusion|FrameParse|TwoQueueAccept
bench-gate:
	$(GO) test -run '^$$' -bench '$(GATEHOT)' -benchmem -count=$(GATECOUNT) . \
		| $(GO) run ./cmd/benchjson -baseline BENCH_pr10.json -tolerance $(GATETOL) -hot '$(GATEHOT)'

# Benchmarks across every package, one sample each (no JSON).
bench-all:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/leafrouter
	$(GO) run ./examples/tuning
	$(GO) run ./examples/lastmile
	$(GO) run ./examples/ddoscampaign

# Paper-fidelity reproduction of every table and figure (minutes).
experiments:
	$(GO) run ./cmd/experiment -run all

# Quick smoke pass over the same artifacts (seconds).
fast-experiments:
	$(GO) run ./cmd/experiment -run all -fast

ablations:
	$(GO) run ./cmd/experiment -run ablations

# Seeded, deterministic adversarial evasion matrix (seconds): the
# closed detect → attribute → mitigate loop under theory-guided
# attacks. Same seed, byte-identical table.
evasion:
	$(GO) run ./cmd/experiment -run evasion -fast

# Distributed detection smoke (seconds): a flood split across four
# sites at half each site's local floor, invisible to every local
# detector, recovered by the fusion coordinator from censored summary
# streams. Seeded and deterministic.
distributed:
	$(GO) run ./cmd/experiment -run distributed -fast

# Victim two-queue race (seconds): the same flood fed to the detector
# and to a real SYN-queue/accept-queue victim kernel, asserting the
# alarm precedes the first legitimate connection failure. Seeded and
# deterministic.
victim:
	$(GO) run ./cmd/experiment -run victim -fast

# Multi-agent daemon soak under the race detector: hours of
# operational churn (checkpoint, kill, resume, live reload) compressed
# into SOAKTIME, asserting byte-identical final state for agents no
# reload touched. `make soak` for the full budget; soak-short is the
# seconds-scale version `make check` runs.
SOAKTIME ?= 60s
soak:
	$(GO) test -race ./internal/daemon/ -run TestSoakChurn -soak $(SOAKTIME) -v

soak-short:
	$(GO) test -race ./internal/daemon/ -run TestSoakChurn -soak 5s

# 8 seconds per fuzz target; extend FUZZTIME for deeper runs.
FUZZTIME ?= 8s
fuzz:
	$(GO) test ./internal/packet -fuzz '^FuzzClassify$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/packet -fuzz '^FuzzSegmentUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -fuzz '^FuzzAggregate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pcapng -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pcapng -fuzz '^FuzzReaderStreaming$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/iptrace -fuzz '^FuzzCaptureReader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/iptrace -fuzz '^FuzzCaptureReaderStreaming$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sourcetrack -fuzz '^FuzzKeyedSnapshotRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/flood -fuzz '^FuzzPulsingCountsMatchRecords$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingest -fuzz '^FuzzBatchMatchesRecordPath$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/capture -fuzz '^FuzzFrameParse$$' -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
	rm -f syndog syndogd tracegen floodgen experiment syndogfleet
