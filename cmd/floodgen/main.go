// Command floodgen mixes a spoofed-source SYN flood into a background
// trace, reproducing the experiment setup of Figure 6.
//
// Usage:
//
//	floodgen -in unc.trace -rate 45 -start 5m -duration 10m -o mixed.trace
//	floodgen -in a.trace -pattern bursty -rate 20 -o mixed.trace
//
// The flood is pure outbound SYNs toward the victim; the spoofed
// sources are drawn from 240.0.0.0/4, so no SYN/ACKs ever return.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"repro/internal/flood"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "floodgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("floodgen", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "background trace (binary format; '-' = stdin)")
		out      = fs.String("o", "", "output mixed trace (binary; '-' or empty = stdout)")
		rate     = fs.Float64("rate", 45, "flood rate fi in SYN/s (peak rate for bursty)")
		start    = fs.Duration("start", 3*time.Minute, "flood onset")
		duration = fs.Duration("duration", 10*time.Minute, "flood duration")
		pattern  = fs.String("pattern", "constant", "flood pattern: constant, bursty, ramp")
		victim   = fs.String("victim", "11.99.99.1", "victim IPv4 address")
		port     = fs.Uint("port", 80, "victim TCP port")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}

	victimAddr, err := netip.ParseAddr(*victim)
	if err != nil {
		return fmt.Errorf("victim: %w", err)
	}
	if !victimAddr.Is4() {
		return fmt.Errorf("victim %v is not IPv4", victimAddr)
	}

	var p flood.Pattern
	switch *pattern {
	case "constant":
		p = flood.Constant{PerSecond: *rate}
	case "bursty":
		p = flood.Bursty{PeakRate: *rate, On: 10 * time.Second, Off: 10 * time.Second}
	case "ramp":
		p = flood.Ramp{StartRate: 0, EndRate: *rate, Span: *duration}
	default:
		return fmt.Errorf("unknown pattern %q (constant, bursty, ramp)", *pattern)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	bg, err := trace.ReadBinary(r)
	if err != nil {
		return fmt.Errorf("read background: %w", err)
	}

	fl, err := flood.GenerateTrace(flood.Config{
		Start:      *start,
		Duration:   *duration,
		Pattern:    p,
		Victim:     victimAddr,
		VictimPort: uint16(*port),
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	mixed := trace.Merge(bg.Name+"+flood", bg, fl)
	if bg.Span >= fl.Span {
		mixed.Span = bg.Span
	} else {
		fmt.Fprintf(os.Stderr, "warning: flood extends past the background trace (%v > %v)\n",
			fl.Span, bg.Span)
	}

	var w io.Writer = os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteBinary(w, mixed); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mixed %d background + %d flood records (fi=%.4g SYN/s %s, onset %v)\n",
		len(bg.Records), len(fl.Records), *rate, *pattern, *start)
	return nil
}
