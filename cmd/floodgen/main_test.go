package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// makeBackground writes a small binary background trace and returns
// its path.
func makeBackground(t *testing.T) string {
	t.Helper()
	p := trace.Auckland()
	p.Span = 8 * time.Minute
	tr, err := trace.Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bg.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func readTrace(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunMixesFlood(t *testing.T) {
	bg := makeBackground(t)
	out := filepath.Join(t.TempDir(), "mixed.trace")
	err := run([]string{
		"-in", bg, "-o", out,
		"-rate", "10", "-start", "2m", "-duration", "3m",
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := readTrace(t, out)
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	orig := readTrace(t, bg)
	extra := len(mixed.Records) - len(orig.Records)
	if extra != 1800 { // 10 SYN/s * 180 s
		t.Errorf("flood records = %d, want 1800", extra)
	}
	if mixed.Span != orig.Span {
		t.Errorf("span changed: %v -> %v", orig.Span, mixed.Span)
	}
	// Every added record is an outbound SYN in the flood window.
	floodCount := 0
	for _, r := range mixed.Records {
		if r.Dst.String() == "11.99.99.1" {
			floodCount++
			if r.Kind != packet.KindSYN || r.Dir != trace.DirOut {
				t.Fatalf("bad flood record %+v", r)
			}
			if r.Ts < 2*time.Minute || r.Ts >= 5*time.Minute {
				t.Fatalf("flood record at %v outside window", r.Ts)
			}
		}
	}
	if floodCount != 1800 {
		t.Errorf("flood records by victim = %d", floodCount)
	}
}

func TestRunPatterns(t *testing.T) {
	bg := makeBackground(t)
	for _, pattern := range []string{"constant", "bursty", "ramp"} {
		out := filepath.Join(t.TempDir(), pattern+".trace")
		err := run([]string{
			"-in", bg, "-o", out,
			"-rate", "10", "-start", "1m", "-duration", "2m",
			"-pattern", pattern,
		})
		if err != nil {
			t.Errorf("pattern %s: %v", pattern, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
	bg := makeBackground(t)
	if err := run([]string{"-in", bg, "-victim", "not-an-ip"}); err == nil {
		t.Error("bad victim accepted")
	}
	if err := run([]string{"-in", bg, "-victim", "::1"}); err == nil {
		t.Error("IPv6 victim accepted")
	}
	if err := run([]string{"-in", bg, "-pattern", "sinusoid"}); err == nil {
		t.Error("unknown pattern accepted")
	}
}
