// Command syndogd runs a SYN-dog agent as a long-lived daemon: it
// replays a trace in (optionally accelerated) real time through the
// agent and serves the agent's live state over HTTP — the operational
// wrapper a network operator would deploy next to a leaf router.
//
// Endpoints:
//
//	GET /healthz  -> 200 "ok"
//	GET /status   -> JSON snapshot (periods, K-bar, yn, alarm)
//	GET /reports  -> JSON array of per-period reports
//	GET /metrics  -> Prometheus-style text exposition
//
// Usage:
//
//	syndogd -in mixed.trace -listen :8080 -speed 60
//
// -speed 60 replays one minute of trace time per wall second; -speed 0
// processes the whole trace instantly and then just serves the final
// state (useful for post-mortems).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "syndogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogd", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input trace (binary format)")
		listen    = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		speed     = fs.Float64("speed", 0, "trace seconds replayed per wall second (0 = instant)")
		t0        = fs.Duration("t0", 20*time.Second, "observation period")
		offset    = fs.Float64("a", 0.35, "CUSUM offset a")
		threshold = fs.Float64("N", 1.05, "flooding threshold N")
		statePath = fs.String("state", "", "snapshot file: loaded at start if present, written at shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("missing -in")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	tr, err := trace.ReadBinary(f)
	f.Close()
	if err != nil {
		return err
	}

	agent, err := loadOrNewAgent(*statePath, core.Config{T0: *t0, Offset: *offset, Threshold: *threshold})
	if err != nil {
		return err
	}

	d := newDaemon(agent, tr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := d.serve(ctx, *listen, *speed)
	if *statePath != "" {
		if err := d.saveSnapshot(*statePath); err != nil {
			return err
		}
	}
	return serveErr
}

// loadOrNewAgent resumes from a snapshot file when one exists,
// otherwise builds a fresh agent with cfg.
func loadOrNewAgent(statePath string, cfg core.Config) (*core.Agent, error) {
	if statePath != "" {
		if f, err := os.Open(statePath); err == nil {
			defer f.Close()
			agent, err := core.ReadSnapshot(f)
			if err != nil {
				return nil, fmt.Errorf("resume from %s: %w", statePath, err)
			}
			fmt.Fprintf(os.Stderr, "syndogd: resumed from %s (%d periods, K-bar %.1f)\n",
				statePath, len(agent.Reports()), agent.KBar())
			return agent, nil
		}
	}
	return core.NewAgent(cfg)
}

// saveSnapshot persists the agent state atomically.
func (d *daemon) saveSnapshot(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	d.mu.Lock()
	werr := d.agent.WriteSnapshot(f)
	d.mu.Unlock()
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	return os.Rename(tmp, path)
}

// daemon owns the agent behind a mutex: the replay goroutine writes,
// HTTP handlers read.
type daemon struct {
	mu    sync.Mutex
	agent *core.Agent
	tr    *trace.Trace
	done  bool
}

func newDaemon(agent *core.Agent, tr *trace.Trace) *daemon {
	return &daemon{agent: agent, tr: tr}
}

// statusSnapshot is the /status payload.
type statusSnapshot struct {
	Trace        string        `json:"trace"`
	Periods      int           `json:"periods"`
	KBar         float64       `json:"kBar"`
	Statistic    float64       `json:"yn"`
	Alarmed      bool          `json:"alarmed"`
	AlarmPeriod  int           `json:"alarmPeriod,omitempty"`
	AlarmAtNanos int64         `json:"alarmAtNanos,omitempty"`
	ReplayDone   bool          `json:"replayDone"`
	T0           time.Duration `json:"t0Nanos"`
}

func (d *daemon) snapshot() statusSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	reports := d.agent.Reports()
	s := statusSnapshot{
		Trace:      d.tr.Name,
		Periods:    len(reports),
		KBar:       d.agent.KBar(),
		Alarmed:    d.agent.Alarmed(),
		ReplayDone: d.done,
		T0:         d.agent.Config().T0,
	}
	if len(reports) > 0 {
		s.Statistic = reports[len(reports)-1].Y
	}
	if al := d.agent.FirstAlarm(); al != nil {
		s.AlarmPeriod = al.Period
		s.AlarmAtNanos = int64(al.At)
	}
	return s
}

// replay feeds the trace through the agent. speed 0 means instant.
func (d *daemon) replay(ctx context.Context, speed float64) {
	if speed <= 0 {
		d.mu.Lock()
		_, _ = d.agent.ProcessTrace(d.tr) // trace was validated on load paths
		d.done = true
		d.mu.Unlock()
		return
	}
	t0 := d.agent.Config().T0
	periods := int(d.tr.Span / t0)
	next := t0
	idx := 0
	for p := 0; p < periods; p++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Duration(float64(t0) / speed)):
		}
		d.mu.Lock()
		for idx < len(d.tr.Records) && d.tr.Records[idx].Ts < next {
			r := d.tr.Records[idx]
			d.agent.Observe(toDir(r.Dir), r.Kind)
			idx++
		}
		d.agent.EndPeriod(next)
		d.mu.Unlock()
		next += t0
	}
	d.mu.Lock()
	d.done = true
	d.mu.Unlock()
}

func toDir(dir trace.Direction) netsim.Direction {
	if dir == trace.DirOut {
		return netsim.Outbound
	}
	return netsim.Inbound
}

// handler builds the HTTP mux.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.snapshot())
	})
	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, _ *http.Request) {
		d.mu.Lock()
		reports := append([]core.Report(nil), d.agent.Reports()...)
		d.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reports)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s := d.snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# TYPE syndog_periods_total counter\nsyndog_periods_total %d\n", s.Periods)
		fmt.Fprintf(w, "# TYPE syndog_kbar gauge\nsyndog_kbar %g\n", s.KBar)
		fmt.Fprintf(w, "# TYPE syndog_statistic gauge\nsyndog_statistic %g\n", s.Statistic)
		alarmed := 0
		if s.Alarmed {
			alarmed = 1
		}
		fmt.Fprintf(w, "# TYPE syndog_alarmed gauge\nsyndog_alarmed %d\n", alarmed)
	})
	return mux
}

// serve starts the replay and the HTTP server, returning when ctx is
// cancelled.
func (d *daemon) serve(ctx context.Context, listen string, speed float64) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "syndogd: serving on http://%s (trace %q, %d records)\n",
		ln.Addr(), d.tr.Name, len(d.tr.Records))

	srv := &http.Server{Handler: d.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	go d.replay(ctx, speed)

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return ctx.Err()
	case err := <-errCh:
		return err
	}
}
