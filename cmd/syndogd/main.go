// Command syndogd runs a SYN-dog detector as a long-lived daemon: it
// replays a capture in (optionally accelerated) real time through the
// ingest pipeline and serves the detector's live state over HTTP — the
// operational wrapper a network operator would deploy next to a leaf
// router. The replay/serve/snapshot machinery lives in internal/daemon;
// this command only parses flags and wires the pieces.
//
// Endpoints:
//
//	GET /healthz  -> 200 "ok" (503 once the replay has failed)
//	GET /status   -> JSON snapshot (periods, K-bar, yn, alarm, replay + checkpoint state)
//	GET /reports  -> JSON array of per-period reports
//	GET /sources  -> JSON ranked per-source attribution (with -track-sources)
//	GET /metrics  -> Prometheus-style text exposition
//
// Usage:
//
//	syndogd -in mixed.trace -listen :8080 -speed 60
//	syndogd -in mixed.trace -state agent.json -checkpoint 30s
//	syndogd -in mixed.trace -track-sources -key-bits 24 -max-sources 4096
//	syndogd -in capture.pcap -prefix 152.2.0.0/16
//	syndogd -in mixed.trace -detector adaptive-ewma
//
// -speed 60 replays one minute of trace time per wall second; -speed 0
// processes the whole trace instantly and then just serves the final
// state (useful for post-mortems).
//
// A .pcap input streams: the file is prescanned once in O(1) memory to
// learn its span and record count, then replayed without ever holding
// the capture in memory. Direction inference needs -prefix.
//
// With -state, the agent snapshot is loaded at start if the file
// exists and written durably (fsync before rename) at shutdown — and
// every -checkpoint interval while running. A resumed agent skips the
// periods its snapshot already covers, so a restart produces the same
// report series as one uninterrupted run. A snapshot whose parameters
// disagree with -t0/-a/-N is a startup error, never silently adopted.
// Only the syndog-cusum detector carries snapshot state, so -state
// requires it; the baselines are stateless comparisons.
//
// -track-sources adds the per-source attribution engine (one keyed
// CUSUM per source prefix, Space-Saving bounded to -max-sources): the
// ranked offender list serves at /sources, keyed gauges join /metrics,
// and the snapshot carries the keyed state too — resuming a keyed
// snapshot without -track-sources, or with a changed -key-bits or
// -max-sources, is a startup error, never a silent drop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "syndogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogd", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input capture: .trace/.bin (binary), .csv, or .pcap (streamed)")
		prefixStr  = fs.String("prefix", "", "stub prefix for pcap direction inference (e.g. 152.2.0.0/16)")
		detector   = fs.String("detector", "", "decision rule: "+strings.Join(ingest.DetectorNames(), ", ")+" (default syndog-cusum)")
		listen     = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		speed      = fs.Float64("speed", 0, "trace seconds replayed per wall second (0 = instant)")
		t0         = fs.Duration("t0", 20*time.Second, "observation period")
		offset     = fs.Float64("a", 0.35, "CUSUM offset a")
		threshold  = fs.Float64("N", 1.05, "flooding threshold N")
		statePath  = fs.String("state", "", "snapshot file: loaded at start if present, written at shutdown")
		checkpoint = fs.Duration("checkpoint", 0, "periodic snapshot interval (0 = only at shutdown; needs -state)")
		track      = fs.Bool("track-sources", false, "run the per-source attribution engine (/sources endpoint)")
		keyBits    = fs.Int("key-bits", sourcetrack.DefaultKeyBits, "source key prefix width: 32 per host, 24, 16, ... (needs -track-sources)")
		maxSources = fs.Int("max-sources", sourcetrack.DefaultMaxSources, "per-source CUSUM states to keep (Space-Saving admission; needs -track-sources)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("missing -in")
	}
	if *checkpoint > 0 && *statePath == "" {
		return errors.New("-checkpoint needs -state")
	}
	cusum := *detector == "" || *detector == "syndog-cusum"
	if *statePath != "" && !cusum {
		return fmt.Errorf("-state needs the syndog-cusum detector, not %q (baselines carry no snapshot state)", *detector)
	}
	if *track && !cusum {
		return fmt.Errorf("-track-sources needs the syndog-cusum detector, not %q", *detector)
	}
	if !*track && (*keyBits != sourcetrack.DefaultKeyBits || *maxSources != sourcetrack.DefaultMaxSources) {
		return errors.New("-key-bits/-max-sources need -track-sources")
	}
	var prefix netip.Prefix
	if *prefixStr != "" {
		var err error
		if prefix, err = netip.ParsePrefix(*prefixStr); err != nil {
			return fmt.Errorf("prefix: %w", err)
		}
	}

	cfg := core.Config{T0: *t0, Offset: *offset, Threshold: *threshold}
	effT0 := *t0
	var det ingest.Detector
	var tracker *sourcetrack.Tracker
	if cusum {
		var trackCfg *sourcetrack.Config
		if *track {
			trackCfg = &sourcetrack.Config{
				KeyBits:    *keyBits,
				MaxSources: *maxSources,
				Shards:     runtime.GOMAXPROCS(0),
				Agent:      core.Config{T0: *t0, Offset: *offset, Threshold: *threshold},
			}
		}
		agent, tr, resumed, err := daemon.LoadOrNewState(*statePath, cfg, trackCfg)
		if err != nil {
			return err
		}
		tracker = tr
		if resumed {
			fmt.Fprintf(os.Stderr, "syndogd: resumed from %s (%d periods, K-bar %.1f)\n",
				*statePath, len(agent.Reports()), agent.KBar())
			if tracker != nil {
				st := tracker.Stats()
				fmt.Fprintf(os.Stderr, "syndogd: keyed state: %d sources tracked, %d evicted\n",
					st.Tracked, st.Evicted)
			}
		}
		det = ingest.WrapAgent(agent)
		effT0 = agent.Config().T0
	} else {
		var err error
		if det, err = ingest.NewDetector(*detector, ingest.DetectorConfig{Agent: cfg}); err != nil {
			return err
		}
	}

	opts := daemon.Options{
		Name:               "syndogd",
		StatePath:          *statePath,
		CheckpointInterval: *checkpoint,
		Tracker:            tracker,
	}

	var d *daemon.Daemon
	if strings.HasSuffix(*in, ".pcap") {
		// Streaming pcap: prescan for span and record count, then
		// replay from a fresh stream — the capture never materializes.
		if !prefix.IsValid() {
			return fmt.Errorf("trace: %s needs a stub prefix for direction inference", *in)
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		info, err := ingest.PcapInfo(f)
		f.Close()
		if err != nil {
			return err
		}
		info.Name = *in
		src, _, err := ingest.Open(*in, prefix)
		if err != nil {
			return err
		}
		defer src.Close()
		if d, err = daemon.NewStream(det, src, info, effT0, opts); err != nil {
			return err
		}
	} else {
		// Validate once at the door; the replay path then trusts the
		// trace's invariants.
		tr, err := trace.LoadValidated(*in, prefix)
		if err != nil {
			return err
		}
		if tr.Span <= 0 {
			return fmt.Errorf("daemon: trace %q has no span", tr.Name)
		}
		src := ingest.NewTraceSource(tr)
		info := ingest.Info{Name: tr.Name, Span: tr.Span, Records: len(tr.Records)}
		if d, err = daemon.NewStream(det, src, info, effT0, opts); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := d.Serve(ctx, *listen, *speed)
	// Final snapshot on shutdown, even when the signal arrived
	// mid-replay: the completed periods are durable either way.
	if *statePath != "" {
		if err := d.SaveState(*statePath); err != nil {
			return err
		}
	}
	return serveErr
}
