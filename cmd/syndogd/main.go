// Command syndogd runs a SYN-dog agent as a long-lived daemon: it
// replays a trace in (optionally accelerated) real time through the
// agent and serves the agent's live state over HTTP — the operational
// wrapper a network operator would deploy next to a leaf router. The
// replay/serve/snapshot machinery lives in internal/daemon; this
// command only parses flags and wires the pieces.
//
// Endpoints:
//
//	GET /healthz  -> 200 "ok" (503 once the replay has failed)
//	GET /status   -> JSON snapshot (periods, K-bar, yn, alarm, replay + checkpoint state)
//	GET /reports  -> JSON array of per-period reports
//	GET /metrics  -> Prometheus-style text exposition
//
// Usage:
//
//	syndogd -in mixed.trace -listen :8080 -speed 60
//	syndogd -in mixed.trace -state agent.json -checkpoint 30s
//
// -speed 60 replays one minute of trace time per wall second; -speed 0
// processes the whole trace instantly and then just serves the final
// state (useful for post-mortems).
//
// With -state, the agent snapshot is loaded at start if the file
// exists and written durably (fsync before rename) at shutdown — and
// every -checkpoint interval while running. A resumed agent skips the
// periods its snapshot already covers, so a restart produces the same
// report series as one uninterrupted run. A snapshot whose parameters
// disagree with -t0/-a/-N is a startup error, never silently adopted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "syndogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogd", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input trace (binary format)")
		listen     = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		speed      = fs.Float64("speed", 0, "trace seconds replayed per wall second (0 = instant)")
		t0         = fs.Duration("t0", 20*time.Second, "observation period")
		offset     = fs.Float64("a", 0.35, "CUSUM offset a")
		threshold  = fs.Float64("N", 1.05, "flooding threshold N")
		statePath  = fs.String("state", "", "snapshot file: loaded at start if present, written at shutdown")
		checkpoint = fs.Duration("checkpoint", 0, "periodic snapshot interval (0 = only at shutdown; needs -state)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("missing -in")
	}
	if *checkpoint > 0 && *statePath == "" {
		return errors.New("-checkpoint needs -state")
	}

	// Validate once at the door; both replay paths then trust the
	// trace's invariants.
	tr, err := trace.LoadValidated(*in, netip.Prefix{})
	if err != nil {
		return err
	}

	cfg := core.Config{T0: *t0, Offset: *offset, Threshold: *threshold}
	agent, resumed, err := daemon.LoadOrNewAgent(*statePath, cfg)
	if err != nil {
		return err
	}
	if resumed {
		fmt.Fprintf(os.Stderr, "syndogd: resumed from %s (%d periods, K-bar %.1f)\n",
			*statePath, len(agent.Reports()), agent.KBar())
	}

	d, err := daemon.New(agent, tr, daemon.Options{
		Name:               "syndogd",
		StatePath:          *statePath,
		CheckpointInterval: *checkpoint,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := d.Serve(ctx, *listen, *speed)
	// Final snapshot on shutdown, even when the signal arrived
	// mid-replay: the completed periods are durable either way.
	if *statePath != "" {
		if err := d.SaveState(*statePath); err != nil {
			return err
		}
	}
	return serveErr
}
