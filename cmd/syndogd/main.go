// Command syndogd runs SYN-dog detectors as a long-lived daemon: it
// replays captures in (optionally accelerated) real time through the
// ingest pipeline and serves the detectors' live state over HTTP — the
// operational wrapper a network operator would deploy next to a leaf
// router. One process supervises N agents (one per watched capture)
// behind a shared HTTP plane; the replay/serve/snapshot/reload
// machinery lives in internal/daemon, and this command only parses
// flags and wires the pieces.
//
// Endpoints (single agent — unchanged from the single-agent daemon):
//
//	GET /healthz  -> 200 "ok" (503 once a replay has failed)
//	GET /status   -> JSON snapshot (periods, K-bar, yn, alarm, replay + checkpoint state)
//	GET /reports  -> JSON array of per-period reports
//	GET /sources  -> JSON ranked per-source attribution (with -track-sources)
//	GET /summaries-> JSON censored per-period summaries, the uplink wire form (?from=N)
//	GET /metrics  -> Prometheus-style text exposition (incl. period/checkpoint latency histograms)
//
// With more than one agent the plane grows per-agent routing:
//
//	GET  /agents                    -> agent inventory (name, detector, generation, state)
//	GET  /agents/{name}/status      -> that agent's status (also /reports, /sources, /metrics)
//	GET  /status                    -> {"agents": {name: status, ...}}
//	GET  /metrics                   -> every metric once, one sample per agent: name{agent="x"} v
//	POST /reload                    -> apply a new spec set (body, or re-read -config when empty)
//	GET  /reloads                   -> ring-buffered reload audit history (time, diff, per-agent outcome)
//	GET  /debug/bundle              -> tar.gz of config + per-agent status/reports/sources/metrics/state
//	GET  /debug/pprof/...           -> net/http/pprof profiles (only with -pprof)
//
// With -uplink every agent POSTs its per-period summaries — censored
// to the wire form by -uplink-censor/-uplink-topk — to a syndogfusion
// coordinator, batched and bounded so a slow or dead coordinator never
// stalls replay (drops are counted at syndog_uplink_dropped_total).
//
// Usage:
//
//	syndogd -in mixed.trace -listen :8080 -speed 60
//	syndogd -in mixed.trace -state agent.json -checkpoint 30s
//	syndogd -agent east=east.trace -agent west=west.pcap -prefix 152.2.0.0/16
//	syndogd -config agents.json
//	syndogd -in mixed.trace -state agent.json -N 2.5 -on-mismatch migrate
//
// -in is shorthand for a single agent named "agent"; -agent name=input
// (repeatable) starts one agent per capture, each taking the shared
// parameter flags as defaults; -config reads the full per-agent spec
// set from a JSON file ({"agents":[{...}]}), the only way to give
// agents distinct parameters or state files. SIGHUP — or an empty-body
// POST /reload — re-reads the -config file and applies the difference
// to the live process: compatible parameter changes (alpha, a, N,
// max-sources, checkpoint, input) apply in place with full state
// carried; incompatible ones (t0, detector, key bits, disabling
// tracking) follow the agent's onMismatch policy.
//
// -speed 60 replays one minute of trace time per wall second; -speed 0
// processes the whole trace instantly and then just serves the final
// state (useful for post-mortems).
//
// A .pcap input streams: the file is prescanned once in O(1) memory to
// learn its span and record count, then replayed without ever holding
// the capture in memory. Direction inference needs -prefix.
//
// A live: input watches a wire instead of replaying a file, through
// the internal/capture subsystem:
//
//	syndogd -in live:eth0 -prefix 152.2.0.0/16        # AF_PACKET (linux, -tags live, CAP_NET_RAW)
//	syndogd -in live:pcap:feed.pcap -prefix 152.2.0.0/16  # pcap byte-stream: file, or FIFO fed by tcpdump -w -
//
// live:IFACE opens an AF_PACKET socket (build tag "live"; without it
// the input is refused at startup) in drop mode: a NIC cannot be
// paused, so ring overruns shed records and count them instead of
// losing packets invisibly in the kernel. live:pcap:PATH is the
// portable form — blocking, lossless, and bit-identical to replaying
// the same file as a plain .pcap input. Live agents have no period
// count or replay progress; -speed is ignored and periods close as
// record timestamps cross boundaries. Capture-layer accounting
// (frames, parsed records, ring and kernel drops) joins /status under
// "capture" and /metrics as syndog_capture_*.
//
// With -state, the agent snapshot is loaded at start if the file
// exists and written durably (fsync before rename) at shutdown — and
// every -checkpoint interval while running. A resumed agent skips the
// periods its snapshot already covers, so a restart produces the same
// report series as one uninterrupted run. A snapshot whose parameters
// disagree with the flags follows -on-mismatch: error (default —
// never silently adopted), migrate (carry every portable piece of
// state), or reset (start fresh). Only the syndog-cusum detector
// carries snapshot state, so -state requires it; the baselines are
// stateless comparisons.
//
// -track-sources adds the per-source attribution engine (one keyed
// CUSUM per source prefix, Space-Saving bounded to -max-sources): the
// ranked offender list serves at /sources, keyed gauges join /metrics,
// and the snapshot carries the keyed state too — resuming a keyed
// snapshot without -track-sources, or with a changed -key-bits, is
// governed by the same -on-mismatch policy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "syndogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogd", flag.ContinueOnError)
	var agents []daemon.AgentSpec
	var (
		in         = fs.String("in", "", "input capture: .trace/.bin (binary), .csv, or .pcap (streamed); shorthand for one -agent")
		configPath = fs.String("config", "", "JSON agent spec file ({\"agents\":[...]}); re-read on SIGHUP or empty POST /reload")
		prefixStr  = fs.String("prefix", "", "stub prefix for pcap direction inference (e.g. 152.2.0.0/16)")
		detector   = fs.String("detector", "", "decision rule: "+strings.Join(ingest.DetectorNames(), ", ")+" (default syndog-cusum)")
		listen     = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		speed      = fs.Float64("speed", 0, "trace seconds replayed per wall second (0 = instant)")
		t0         = fs.Duration("t0", 20*time.Second, "observation period")
		alpha      = fs.Float64("alpha", 0, "K-bar EWMA weight (0 = default 0.9)")
		offset     = fs.Float64("a", 0.35, "CUSUM offset a")
		threshold  = fs.Float64("N", 1.05, "flooding threshold N")
		statePath  = fs.String("state", "", "snapshot file: loaded at start if present, written at shutdown")
		checkpoint = fs.Duration("checkpoint", 0, "periodic snapshot interval (0 = only at shutdown; needs -state)")
		track      = fs.Bool("track-sources", false, "run the per-source attribution engine (/sources endpoint)")
		uplink     = fs.String("uplink", "", "fusion coordinator base URL; agents POST censored period summaries to URL/ingest")
		upCensor   = fs.Float64("uplink-censor", 0, "censoring threshold λ: summaries with Xn below it uplink counters only (0 = no censoring)")
		upTopK     = fs.Int("uplink-topk", 0, "source digests per uplinked summary (0 = default 8, negative = none)")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the HTTP plane")
		keyBits    = fs.Int("key-bits", sourcetrack.DefaultKeyBits, "source key prefix width: 32 per host, 24, 16, ... (needs -track-sources)")
		maxSources = fs.Int("max-sources", sourcetrack.DefaultMaxSources, "per-source CUSUM states to keep (Space-Saving admission; needs -track-sources)")
		mismatch   = fs.String("on-mismatch", "", "snapshot/flag disagreement policy: error, migrate, reset (default error)")
	)
	fs.Func("agent", "agent as name=input, repeatable; shared parameter flags apply to each", func(v string) error {
		name, input, ok := strings.Cut(v, "=")
		if !ok || name == "" || input == "" {
			return fmt.Errorf("want name=input, got %q", v)
		}
		agents = append(agents, daemon.AgentSpec{Name: name, Input: input})
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := daemon.ParsePolicy(*mismatch)
	if err != nil {
		return err
	}

	// Assemble the spec set: a config file is authoritative; otherwise
	// the shared parameter flags fill in every -agent (and the -in
	// shorthand becomes a single agent named "agent").
	var specs []daemon.AgentSpec
	switch {
	case *configPath != "":
		if *in != "" || len(agents) > 0 {
			return errors.New("-config already names the agents; drop -in/-agent")
		}
		if specs, err = daemon.LoadSpecs(*configPath); err != nil {
			return err
		}
	case *in != "" && len(agents) > 0:
		return errors.New("use -in (one agent) or -agent (many), not both")
	case *in != "":
		agents = []daemon.AgentSpec{{Name: "agent", Input: *in}}
		fallthrough
	case len(agents) > 0:
		if *statePath != "" && len(agents) > 1 {
			return errors.New("-state is one file and cannot serve multiple agents; use -config for per-agent state")
		}
		for _, a := range agents {
			a.Prefix = *prefixStr
			a.Detector = *detector
			a.T0 = daemon.Duration(*t0)
			a.Alpha = *alpha
			a.Offset = *offset
			a.Threshold = *threshold
			a.State = *statePath
			a.Checkpoint = daemon.Duration(*checkpoint)
			a.TrackSources = *track
			a.OnMismatch = policy
			if *track || *keyBits != sourcetrack.DefaultKeyBits {
				a.KeyBits = *keyBits
			}
			if *track || *maxSources != sourcetrack.DefaultMaxSources {
				a.MaxSources = *maxSources
			}
			specs = append(specs, a)
		}
	default:
		return errors.New("missing -in (or -agent/-config)")
	}

	// The uplink is one shared client for every agent: each closed
	// period's summary is censored to the wire form and batched to the
	// coordinator, never blocking replay (backpressure drops and
	// counts, like ChanSource's drop mode).
	sumCfg := summary.Config{Censor: *upCensor, TopK: *upTopK}
	var up *summary.Uplink
	if *uplink != "" {
		if up, err = summary.NewUplink(summary.UplinkConfig{
			URL:     *uplink,
			Summary: sumCfg,
		}); err != nil {
			return err
		}
		defer up.Close()
	}

	s, err := daemon.NewSupervisor(specs, daemon.SupervisorOptions{
		ProcName:   "syndogd",
		Log:        os.Stderr,
		Speed:      *speed,
		ConfigPath: *configPath,
		Summary:    sumCfg,
		Uplink:     up,
		Pprof:      *pprofOn,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads -config and applies the difference live. A
	// reload failure is an operator mistake to report, not a reason to
	// take the daemon down.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if _, err := s.ReloadFromConfig(); err != nil {
				fmt.Fprintf(os.Stderr, "syndogd: %v\n", err)
			}
		}
	}()

	// The supervisor owns the shutdown snapshots: every stateful agent
	// is final-saved when Run returns, signal or not.
	return s.Run(ctx, *listen)
}
