package main

// The daemon's behavior (replay, resume equivalence, endpoints,
// checkpointing) is tested in internal/daemon; these tests cover what
// the command itself owns: flag validation and the startup error
// paths that must exit non-zero — an unreadable or invalid trace, and
// a snapshot whose config disagrees with the flags.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/trace"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-in", "x.trace", "-checkpoint", "5s"}); err == nil ||
		!strings.Contains(err.Error(), "-state") {
		t.Error("-checkpoint without -state accepted")
	}
	if err := run([]string{"-in", "x.trace", "-detector", "psychic"}); err == nil {
		t.Error("unknown detector accepted")
	}
	if err := run([]string{"-in", "x.trace", "-detector", "adaptive-ewma", "-state", "s.json"}); err == nil ||
		!strings.Contains(err.Error(), "syndog-cusum") {
		t.Error("-state with a stateless baseline detector accepted")
	}
	if err := run([]string{"-in", "x.pcap"}); err == nil ||
		!strings.Contains(err.Error(), "stub prefix") {
		t.Error("pcap without -prefix accepted")
	}
	if err := run([]string{"-in", "x.pcap", "-prefix", "not-a-prefix"}); err == nil {
		t.Error("malformed -prefix accepted")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	dir := t.TempDir()

	// Garbage bytes: the binary codec must refuse them at startup.
	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", garbage}); err == nil {
		t.Error("garbage trace accepted")
	}

	// Structurally valid file whose records are unsorted: replay would
	// mis-bucket periods, so load-time validation must reject it.
	unsorted := filepath.Join(dir, "unsorted.csv")
	if err := trace.Save(unsorted, &trace.Trace{
		Name: "unsorted", Span: time.Hour,
		Records: []trace.Record{{Ts: 2 * time.Second}, {Ts: time.Second}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", unsorted}); err == nil {
		t.Error("unsorted trace accepted")
	}

	// A trace shorter than one observation period cannot produce a
	// single report.
	short := filepath.Join(dir, "short.trace")
	if err := trace.Save(short, &trace.Trace{Name: "short", Span: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", short}); err == nil {
		t.Error("sub-period trace accepted")
	}
}

func TestRunRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()

	// Snapshot taken at the default parameters.
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(dir, "state.json")
	if err := daemon.WriteSnapshotFile(agent.Snapshot(), state); err != nil {
		t.Fatal(err)
	}
	tr := filepath.Join(dir, "bg.trace")
	if err := trace.Save(tr, &trace.Trace{Name: "bg", Span: time.Hour}); err != nil {
		t.Fatal(err)
	}

	// Flags that disagree with the snapshot must be a startup error,
	// not silently lose to the snapshot.
	err = run([]string{"-in", tr, "-state", state, "-t0", "30s"})
	if err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("config-mismatch resume: err = %v, want config mismatch", err)
	}
	err = run([]string{"-in", tr, "-state", state, "-N", "9.9"})
	if err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("threshold mismatch resume: err = %v, want config mismatch", err)
	}

	// Corrupt state is equally fatal.
	badState := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badState, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", tr, "-state", badState}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}
