package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

func testTrace(t *testing.T, withFlood bool) *trace.Trace {
	t.Helper()
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	p.OutagesPerHour = 0
	bg, err := trace.Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !withFlood {
		return bg
	}
	fl, err := flood.GenerateTrace(flood.Config{
		Start: 3 * time.Minute, Duration: 5 * time.Minute,
		Pattern: flood.Constant{PerSecond: 10},
		Victim:  netip.MustParseAddr("11.99.99.1"), VictimPort: 80, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := trace.Merge("mixed", bg, fl)
	mixed.Span = bg.Span
	return mixed
}

func newTestDaemon(t *testing.T, withFlood bool) *daemon {
	t.Helper()
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return newDaemon(agent, testTrace(t, withFlood))
}

func TestInstantReplayStatus(t *testing.T) {
	d := newTestDaemon(t, true)
	d.replay(context.Background(), 0)

	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s statusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if !s.ReplayDone {
		t.Error("replay not marked done")
	}
	if s.Periods != 30 {
		t.Errorf("periods = %d, want 30", s.Periods)
	}
	if !s.Alarmed {
		t.Error("flooded trace did not alarm")
	}
	if s.AlarmPeriod < 9 {
		t.Errorf("alarm period %d precedes onset period 9", s.AlarmPeriod)
	}
	if s.KBar <= 0 {
		t.Error("K-bar not populated")
	}
}

func TestCleanTraceStaysQuiet(t *testing.T) {
	d := newTestDaemon(t, false)
	d.replay(context.Background(), 0)
	s := d.snapshot()
	if s.Alarmed {
		t.Error("benign trace alarmed")
	}
}

func TestHealthz(t *testing.T) {
	d := newTestDaemon(t, false)
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestReportsEndpoint(t *testing.T) {
	d := newTestDaemon(t, true)
	d.replay(context.Background(), 0)
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/reports")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reports []core.Report
	if err := json.NewDecoder(resp.Body).Decode(&reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 30 {
		t.Errorf("reports = %d, want 30", len(reports))
	}
	sawAlarm := false
	for _, r := range reports {
		if r.Alarmed {
			sawAlarm = true
		}
	}
	if !sawAlarm {
		t.Error("no alarmed period in reports")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	d := newTestDaemon(t, true)
	d.replay(context.Background(), 0)
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := json.NewDecoder(resp.Body).Token(); err == nil {
		t.Error("metrics should not be JSON")
	}
	_ = buf
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body := make([]byte, 4096)
	n, _ := resp2.Body.Read(body)
	text := string(body[:n])
	for _, want := range []string{"syndog_periods_total 30", "syndog_alarmed 1", "syndog_kbar", "syndog_statistic"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestPacedReplayRespectsContext(t *testing.T) {
	d := newTestDaemon(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.replay(ctx, 0.001) // absurdly slow: must rely on cancellation
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("replay did not stop on context cancellation")
	}
	if d.snapshot().ReplayDone {
		t.Error("cancelled replay claimed completion")
	}
}

func TestPacedReplayProgresses(t *testing.T) {
	d := newTestDaemon(t, false)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	// 20s periods at speed 4000: one period per 5ms of wall time.
	go d.replay(ctx, 4000)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.snapshot().Periods >= 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("paced replay stuck at %d periods", d.snapshot().Periods)
}

func TestSnapshotPersistenceAcrossRestart(t *testing.T) {
	statePath := t.TempDir() + "/agent.json"

	// First "boot": process the flooded trace, save the snapshot.
	d1 := newTestDaemon(t, true)
	d1.replay(context.Background(), 0)
	if !d1.snapshot().Alarmed {
		t.Fatal("setup: no alarm")
	}
	if err := d1.saveSnapshot(statePath); err != nil {
		t.Fatal(err)
	}

	// Second "boot": resume from the snapshot.
	agent, err := loadOrNewAgent(statePath, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !agent.Alarmed() {
		t.Error("alarm lost across daemon restart")
	}
	if len(agent.Reports()) != 30 {
		t.Errorf("reports = %d, want 30", len(agent.Reports()))
	}

	// Missing state file falls back to a fresh agent.
	fresh, err := loadOrNewAgent(t.TempDir()+"/none.json", core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Reports()) != 0 {
		t.Error("fresh agent has history")
	}

	// Corrupt state is an error, not a silent fresh start.
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrNewAgent(bad, core.Config{}); err == nil {
		t.Error("corrupt snapshot silently ignored")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
}
