package main

// The daemon's behavior (replay, resume equivalence, endpoints,
// checkpointing) is tested in internal/daemon; these tests cover what
// the command itself owns: flag validation and the startup error
// paths that must exit non-zero — an unreadable or invalid trace, and
// a snapshot whose config disagrees with the flags.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/trace"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-in", "x.trace", "-checkpoint", "5s"}); err == nil ||
		!strings.Contains(err.Error(), "-state") {
		t.Error("-checkpoint without -state accepted")
	}
	if err := run([]string{"-in", "x.trace", "-detector", "psychic"}); err == nil {
		t.Error("unknown detector accepted")
	}
	if err := run([]string{"-in", "x.trace", "-detector", "adaptive-ewma", "-state", "s.json"}); err == nil ||
		!strings.Contains(err.Error(), "syndog-cusum") {
		t.Error("-state with a stateless baseline detector accepted")
	}
	if err := run([]string{"-in", "x.pcap"}); err == nil ||
		!strings.Contains(err.Error(), "stub prefix") {
		t.Error("pcap without -prefix accepted")
	}
	if err := run([]string{"-in", "x.pcap", "-prefix", "not-a-prefix"}); err == nil {
		t.Error("malformed -prefix accepted")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	dir := t.TempDir()

	// Garbage bytes: the binary codec must refuse them at startup.
	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", garbage}); err == nil {
		t.Error("garbage trace accepted")
	}

	// Structurally valid file whose records are unsorted: replay would
	// mis-bucket periods, so load-time validation must reject it.
	unsorted := filepath.Join(dir, "unsorted.csv")
	if err := trace.Save(unsorted, &trace.Trace{
		Name: "unsorted", Span: time.Hour,
		Records: []trace.Record{{Ts: 2 * time.Second}, {Ts: time.Second}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", unsorted}); err == nil {
		t.Error("unsorted trace accepted")
	}

	// A trace shorter than one observation period cannot produce a
	// single report.
	short := filepath.Join(dir, "short.trace")
	if err := trace.Save(short, &trace.Trace{Name: "short", Span: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", short}); err == nil {
		t.Error("sub-period trace accepted")
	}
}

func TestRunRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()

	// Snapshot taken at the default parameters.
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(dir, "state.json")
	if err := daemon.WriteSnapshotFile(agent.Snapshot(), state); err != nil {
		t.Fatal(err)
	}
	tr := filepath.Join(dir, "bg.trace")
	if err := trace.Save(tr, &trace.Trace{Name: "bg", Span: time.Hour}); err != nil {
		t.Fatal(err)
	}

	// Flags that disagree with the snapshot must be a startup error,
	// not silently lose to the snapshot.
	err = run([]string{"-in", tr, "-state", state, "-t0", "30s"})
	if err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("config-mismatch resume: err = %v, want config mismatch", err)
	}
	err = run([]string{"-in", tr, "-state", state, "-N", "9.9"})
	if err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("threshold mismatch resume: err = %v, want config mismatch", err)
	}

	// Corrupt state is equally fatal.
	badState := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badState, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", tr, "-state", badState}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestRunMultiAgentFlagValidation(t *testing.T) {
	if err := run([]string{"-agent", "noequals"}); err == nil ||
		!strings.Contains(err.Error(), "name=input") {
		t.Errorf("malformed -agent: %v", err)
	}
	if err := run([]string{"-agent", "=x.trace"}); err == nil {
		t.Error("empty agent name accepted")
	}
	if err := run([]string{"-in", "x.trace", "-agent", "a=y.trace"}); err == nil ||
		!strings.Contains(err.Error(), "not both") {
		t.Errorf("-in with -agent: %v", err)
	}
	if err := run([]string{"-config", "c.json", "-in", "x.trace"}); err == nil ||
		!strings.Contains(err.Error(), "-config") {
		t.Errorf("-config with -in: %v", err)
	}
	if err := run([]string{"-agent", "a=x.trace", "-agent", "b=y.trace", "-state", "s.json"}); err == nil ||
		!strings.Contains(err.Error(), "-config") {
		t.Errorf("shared -state across agents: %v", err)
	}
	if err := run([]string{"-agent", "a=x.trace", "-agent", "a=y.trace"}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate agent names: %v", err)
	}
	if err := run([]string{"-in", "x.trace", "-on-mismatch", "panic"}); err == nil ||
		!strings.Contains(err.Error(), "on-mismatch") {
		t.Errorf("unknown policy: %v", err)
	}
	if err := run([]string{"-config", "/nonexistent.json"}); err == nil {
		t.Error("missing config file accepted")
	}
	if err := run([]string{"-agent", "bad name=x.trace"}); err == nil {
		t.Error("agent name with a space accepted")
	}
}

func TestRunConfigFileValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "agents.json")

	// Unknown fields are config typos, refused at the door.
	if err := os.WriteFile(cfg, []byte(`{"agents":[{"name":"a","inptu":"x.trace"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfg}); err == nil {
		t.Error("config with unknown field accepted")
	}

	// A structurally valid config still goes through spec validation.
	if err := os.WriteFile(cfg, []byte(`{"agents":[{"name":"a","input":"x.pcap"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfg}); err == nil ||
		!strings.Contains(err.Error(), "stub prefix") {
		t.Errorf("pcap agent without prefix: %v", err)
	}
}

// TestRunMismatchPolicyFlag: -on-mismatch reset turns the historical
// hard error on a disagreeing snapshot into a fresh start (the daemon
// then runs; we only need the startup decision, so the trace replays
// instantly and the listen address is grabbed before SIGTERM... which
// run() cannot deliver to itself — instead, exercise the policy at the
// layer run() delegates to and pin that the flag reaches it).
func TestRunMismatchPolicyFlag(t *testing.T) {
	dir := t.TempDir()
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(dir, "state.json")
	if err := daemon.WriteSnapshotFile(agent.Snapshot(), state); err != nil {
		t.Fatal(err)
	}
	tr := filepath.Join(dir, "bg.trace")
	if err := trace.Save(tr, &trace.Trace{Name: "bg", Span: time.Hour}); err != nil {
		t.Fatal(err)
	}

	// Default: the mismatch is fatal (pinned above); with migrate the
	// same spec builds.
	spec := daemon.AgentSpec{Name: "a", Input: tr, State: state, Threshold: 9.9, OnMismatch: daemon.PolicyMigrate}
	d, action, err := daemon.BuildAgent(spec, "syndogd", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if action != daemon.ActionMigrated {
		t.Errorf("action = %s, want migrated", action)
	}
}
