// Command tracegen synthesizes the per-site background traces
// (calibrated substitutes for the paper's LBL/Harvard/UNC/Auckland
// captures; see DESIGN.md).
//
// Usage:
//
//	tracegen -site unc -o unc.trace                  # binary format
//	tracegen -site auckland -format csv -o a.csv     # text format
//	tracegen -site lbl -format pcap -o lbl.pcap      # tcpdump-compatible
//	tracegen -site harvard -span 10m -seed 7 -o h.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		site   = fs.String("site", "unc", "site profile: lbl, harvard, unc, auckland")
		span   = fs.Duration("span", 0, "override the profile's capture duration (0 = paper value)")
		seed   = fs.Int64("seed", 1, "random seed")
		format = fs.String("format", "bin", "output format: bin, csv, pcap")
		out    = fs.String("o", "", "output file ('-' or empty = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, err := profileByName(*site)
	if err != nil {
		return err
	}
	if *span > 0 {
		profile.Span = *span
	}

	tr, err := trace.Generate(profile, *seed)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "bin":
		err = trace.WriteBinary(w, tr)
	case "csv":
		err = trace.WriteCSV(w, tr)
	case "pcap":
		err = trace.WritePcap(w, tr)
	default:
		return fmt.Errorf("unknown format %q (bin, csv, pcap)", *format)
	}
	if err != nil {
		return err
	}

	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "%s: %v span, %d records (%d out-SYN, %d in-SYN/ACK), %s\n",
		tr.Name, tr.Span, s.Records, s.OutSYN, s.InSYNACK, s.Directional)
	return nil
}

func profileByName(name string) (trace.Profile, error) {
	for _, p := range trace.Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return trace.Profile{}, fmt.Errorf("unknown site %q (lbl, harvard, unc, auckland)", name)
}
