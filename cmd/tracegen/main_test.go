package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"lbl", "LBL", "harvard", "unc", "Auckland"} {
		p, err := profileByName(name)
		if err != nil {
			t.Errorf("profileByName(%q): %v", name, err)
		}
		if !strings.EqualFold(p.Name, name) {
			t.Errorf("profileByName(%q) = %q", name, p.Name)
		}
	}
	if _, err := profileByName("mit"); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestRunGeneratesBinaryTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.trace")
	if err := run([]string{"-site", "auckland", "-span", "5m", "-seed", "3", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "Auckland" || len(tr.Records) == 0 {
		t.Errorf("trace = %q with %d records", tr.Name, len(tr.Records))
	}
}

func TestRunGeneratesCSVAndPcap(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "x.csv")
	if err := run([]string{"-site", "lbl", "-span", "2m", "-format", "csv", "-o", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# trace LBL") {
		t.Errorf("csv header = %q", string(data[:40]))
	}

	pcap := filepath.Join(dir, "x.pcap")
	if err := run([]string{"-site", "lbl", "-span", "2m", "-format", "pcap", "-o", pcap}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(pcap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 24 {
		t.Error("pcap too small to contain a header")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-site", "nowhere"}); err == nil {
		t.Error("bad site accepted")
	}
	if err := run([]string{"-site", "lbl", "-span", "2m", "-format", "xml", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("bad format accepted")
	}
}
