// Command experiment regenerates the paper's tables and figures.
//
// Usage:
//
//	experiment -run all                 # every artifact, paper-fidelity
//	experiment -run table2 -runs 50     # one artifact, more Monte-Carlo runs
//	experiment -run fig5 -fast          # quick smoke rendering
//	experiment -run table3 -csv out/    # also write machine-readable CSV
//	experiment -run table2 -parallel 8  # fan Monte-Carlo cells over 8 workers
//
// Parallelism never changes the output: every Monte-Carlo cell derives
// its own RNG from the seed, so -parallel 1 and -parallel 8 produce
// byte-identical artifacts for the same -seed.
//
// Artifacts are printed as aligned text tables and ASCII plots; -csv
// additionally writes one CSV file per artifact into the directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	var (
		id       = fs.String("run", "all", "experiment id ("+strings.Join(experiment.SortedIDs(), ", ")+") or 'all'")
		seed     = fs.Int64("seed", 1, "random seed (same seed, same artifacts)")
		runs     = fs.Int("runs", 0, "Monte-Carlo runs for tables 2-3 (0 = default 20)")
		fast     = fs.Bool("fast", false, "shrink spans and runs for a quick smoke pass")
		csv      = fs.String("csv", "", "directory to also write per-artifact CSV files into")
		md       = fs.Bool("md", false, "print artifacts as markdown instead of text/ASCII")
		parallel = fs.Int("parallel", 0, "worker count for Monte-Carlo cells (0 = one per CPU); output is identical at any value")
		recLevel = fs.Bool("record-level", false, "replay full packet records instead of the per-period counts fast path; output is identical, only slower")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiment.Options{Seed: *seed, Runs: *runs, Fast: *fast, Parallelism: *parallel, RecordLevel: *recLevel}

	var exps []experiment.Experiment
	switch *id {
	case "all":
		exps = experiment.Registry()
	case "ablations":
		exps = experiment.AblationRegistry()
	case "everything":
		exps = append(experiment.Registry(), experiment.AblationRegistry()...)
	default:
		e, ok := experiment.LookupAny(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have: %s, plus ablation-*, all, ablations, everything)",
				*id, strings.Join(experiment.SortedIDs(), ", "))
		}
		exps = []experiment.Experiment{e}
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
	}

	for _, e := range exps {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		arts, err := e.Func(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for i, a := range arts {
			if *md {
				ma, ok := a.(experiment.MarkdownArtifact)
				if !ok {
					return fmt.Errorf("%s: artifact has no markdown form", e.ID)
				}
				if err := ma.WriteMarkdown(os.Stdout); err != nil {
					return err
				}
			} else if err := a.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if *csv != "" {
				if err := writeCSV(*csv, e.ID, i, len(arts), a); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSV(dir, id string, i, total int, a experiment.Artifact) error {
	name := id
	if total > 1 {
		name = fmt.Sprintf("%s-%c", id, 'a'+i)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := a.WriteCSV(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	fmt.Printf("(csv written to %s)\n\n", path)
	return nil
}
