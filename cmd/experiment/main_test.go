package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleArtifactWithCSV(t *testing.T) {
	dir := t.TempDir()
	// table1 in fast mode is the cheapest full artifact.
	if err := run([]string{"-run", "table1", "-fast", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "Trace,") {
		t.Errorf("csv = %q...", string(data[:20]))
	}
}

func TestRunMultiArtifactCSVNaming(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig3", "-fast", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3-a.csv", "fig3-b.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestRunAblationId(t *testing.T) {
	if err := run([]string{"-run", "ablation-state"}); err != nil {
		t.Errorf("ablation id rejected: %v", err)
	}
}

func TestRunMarkdownMode(t *testing.T) {
	if err := run([]string{"-run", "table1", "-fast", "-md"}); err != nil {
		t.Errorf("markdown mode failed: %v", err)
	}
	if err := run([]string{"-run", "fig6", "-fast", "-md"}); err != nil {
		t.Errorf("diagram markdown failed: %v", err)
	}
}

func TestRunGroupIds(t *testing.T) {
	// 'all' and 'everything' resolve to non-empty experiment sets; the
	// sets themselves are executed elsewhere (they are Monte-Carlo
	// heavy), so only id resolution is checked here via a bogus csv
	// dir failure short-circuit.
	if err := run([]string{"-run", "all", "-fast", "-csv", "/dev/null/impossible"}); err == nil {
		t.Error("uncreatable csv dir accepted")
	}
}
