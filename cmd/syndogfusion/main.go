// Command syndogfusion runs the multi-vantage fusion coordinator: a
// small HTTP service that ingests bandwidth-capped per-period
// summaries uplinked by N SYN-dog monitors (syndogd -uplink,
// syndogfleet -uplink), fuses their censored local CUSUM statistics
// through a rank-based change detector, and localizes a dispersed
// flood to the carrying monitor subset and source prefixes. Each
// monitor alone may sit below its local detection floor; the
// coordinator alarms on their agreement.
//
// Endpoints:
//
//	POST /ingest   <- JSON array of period summaries (the uplink batch format)
//	GET  /healthz  -> 200 "ok"
//	GET  /status   -> fused statistic, alarm state, localization once alarmed
//	GET  /fused    -> per-period fused series (?from=N)
//	GET  /monitors -> per-monitor delivery/staleness state
//	GET  /metrics  -> Prometheus-style text exposition
//
// Usage:
//
//	syndogfusion -listen :9090 -expect 4
//	syndogfusion -expect 4 -quorum 3 -stale-after 5
//
// -expect holds fusion until that many monitors have registered, so a
// half-assembled fleet is never fused as if it were the whole picture;
// -quorum overrides the default majority rule; -stale-after is the lag
// (in periods behind the freshest monitor) after which a monitor is
// excluded from fusion and from the quorum denominator until it
// catches up.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fusion"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "syndogfusion:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogfusion", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:9090", "HTTP listen address")
		expect     = fs.Int("expect", 0, "hold fusion until this many monitors have registered (0 = fuse as they arrive)")
		quorum     = fs.Int("quorum", 0, "monitors that must be ready to fuse a period (0 = majority)")
		staleAfter = fs.Int("stale-after", fusion.DefaultStaleAfter, "periods behind the freshest monitor before exclusion")
		history    = fs.Int("history", fusion.DefaultHistory, "per-monitor sliding window for quantile normalization")
		minHist    = fs.Int("min-history", fusion.DefaultMinHistory, "observations before a monitor's quantiles count")
		offset     = fs.Float64("a", fusion.DefaultOffset, "fused CUSUM offset a")
		threshold  = fs.Float64("N", fusion.DefaultThreshold, "fused flooding threshold N")
		window     = fs.Int("localize-window", fusion.DefaultLocalizeWindow, "trailing periods scored for localization")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := fusion.NewCoordinator(fusion.Config{
		Expect:         *expect,
		Quorum:         *quorum,
		StaleAfter:     *staleAfter,
		History:        *history,
		MinHistory:     *minHist,
		Offset:         *offset,
		Threshold:      *threshold,
		LocalizeWindow: *window,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *listen, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "syndogfusion: listening on %s\n", *listen)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}
