package main

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flood"
	"repro/internal/trace"
)

// writeTempTrace writes tr in the given format and returns the path.
func writeTempTrace(t *testing.T, tr *trace.Trace, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(name, ".csv"):
		err = trace.WriteCSV(f, tr)
	case strings.HasSuffix(name, ".pcap"):
		err = trace.WritePcap(f, tr)
	default:
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func benignTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	p.OutagesPerHour = 0
	tr, err := trace.Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func floodedTrace(t *testing.T) *trace.Trace {
	t.Helper()
	bg := benignTrace(t)
	fl, err := flood.GenerateTrace(flood.Config{
		Start:      3 * time.Minute,
		Duration:   5 * time.Minute,
		Pattern:    flood.Constant{PerSecond: 10},
		Victim:     netip.MustParseAddr("11.99.99.1"),
		VictimPort: 80,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := trace.Merge("mixed", bg, fl)
	mixed.Span = bg.Span
	return mixed
}

func TestRunCleanTraceExitsZero(t *testing.T) {
	path := writeTempTrace(t, benignTrace(t), "bg.trace")
	var out bytes.Buffer
	code, err := run([]string{"-in", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "no flooding detected") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunFloodedTraceExitsTwo(t *testing.T) {
	path := writeTempTrace(t, floodedTrace(t), "mixed.trace")
	var out bytes.Buffer
	code, err := run([]string{"-in", path, "-v"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "FLOODING ALARM") {
		t.Error("missing alarm banner")
	}
	if !strings.Contains(out.String(), "*** ALARM ***") {
		t.Error("verbose period table missing alarm markers")
	}
}

func TestRunCSVInput(t *testing.T) {
	path := writeTempTrace(t, floodedTrace(t), "mixed.csv")
	var out bytes.Buffer
	code, err := run([]string{"-in", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("csv exit code = %d, want 2", code)
	}
}

func TestRunPcapInputNeedsPrefix(t *testing.T) {
	path := writeTempTrace(t, floodedTrace(t), "mixed.pcap")
	var out bytes.Buffer
	if _, err := run([]string{"-in", path}, &out); err == nil {
		t.Error("pcap without -prefix accepted")
	}
	code, err := run([]string{"-in", path, "-prefix", "130.216.0.0/16"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("pcap exit code = %d, want 2", code)
	}
}

func TestRunTcpdumpInput(t *testing.T) {
	// A hand-rolled tcpdump log with a clear flood tail.
	var sb strings.Builder
	for s := 0; s < 120; s++ {
		ts := fmt.Sprintf("10:00:%02d.000000", s%60)
		if s >= 60 {
			ts = fmt.Sprintf("10:01:%02d.000000", s%60)
		}
		sb.WriteString(ts + " IP 130.216.0.5.40000 > 11.0.0.1.80: Flags [S], length 0\n")
		if s < 60 {
			sb.WriteString(ts + " IP 11.0.0.1.80 > 130.216.0.5.40000: Flags [S.], length 0\n")
		} else {
			// Flood phase: 9 extra unanswered SYNs per second.
			for k := 0; k < 9; k++ {
				sb.WriteString(ts + " IP 240.0.0.7.999 > 11.0.0.1.80: Flags [S], length 0\n")
			}
		}
	}
	path := filepath.Join(t.TempDir(), "log.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := run([]string{"-in", path}, &out); err == nil {
		t.Error("tcpdump without -prefix accepted")
	}
	code, err := run([]string{"-in", path, "-prefix", "130.216.0.0/16", "-t0", "10s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("tcpdump exit code = %d, want 2 (alarm)", code)
	}
}

// TestRunLivePcapInput: live:pcap:PATH replays a capture file through
// the capture frame parser, reaches the same verdict as the plain
// .pcap path, and reports its (zero, here: blocking mode) drop count.
func TestRunLivePcapInput(t *testing.T) {
	path := writeTempTrace(t, floodedTrace(t), "mixed.pcap")

	var plain bytes.Buffer
	if _, err := run([]string{"-in", path, "-prefix", "130.216.0.0/16"}, &plain); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run([]string{"-in", "live:pcap:" + path, "-prefix", "130.216.0.0/16"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("live:pcap exit code = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "records dropped: 0") {
		t.Errorf("missing drop-count line:\n%s", out.String())
	}
	// Same verdict line as the plain path; only the trace name and the
	// trailing drop line differ.
	wantAlarm := ""
	for _, line := range strings.Split(plain.String(), "\n") {
		if strings.HasPrefix(line, "FLOODING ALARM") {
			wantAlarm = line
		}
	}
	if wantAlarm == "" || !strings.Contains(out.String(), wantAlarm) {
		t.Errorf("live alarm line diverges from plain pcap path:\nplain: %q\nlive:\n%s", wantAlarm, out.String())
	}
}

func TestRunLiveInputErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-in", "live:eth0", "-prefix", "10.0.0.0/8"}, &out); err == nil ||
		!strings.Contains(err.Error(), "syndogd") {
		t.Errorf("live:eth0 error = %v, want pointer at syndogd", err)
	}
	if _, err := run([]string{"-in", "live:pcap:x.pcap"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-prefix") {
		t.Errorf("live:pcap without prefix error = %v, want -prefix requirement", err)
	}
	if _, err := run([]string{"-in", "live:pcap:", "-prefix", "10.0.0.0/8"}, &out); err == nil {
		t.Error("empty live:pcap path accepted")
	}
}

func TestRunTunedParameters(t *testing.T) {
	path := writeTempTrace(t, benignTrace(t), "bg.trace")
	var out bytes.Buffer
	code, err := run([]string{"-in", path, "-a", "0.2", "-N", "0.6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("tuned params false-alarmed on benign trace (code %d)", code)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if _, err := run([]string{"-in", "/nonexistent/x.trace"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := run([]string{"-in", "x", "-t0", "-5s"}, &out); err == nil {
		t.Error("negative t0 accepted")
	}
}
