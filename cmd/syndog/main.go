// Command syndog runs a SYN-dog detector over a recorded capture and
// reports the per-period detection state and any flooding alarm — the
// offline equivalent of the leaf-router agent.
//
// Input flows through the streaming ingest pipeline (Source →
// Aggregate → Detect), so captures larger than memory replay in O(1)
// space; only the tcpdump text importer materializes (it must sort).
//
// Usage:
//
//	syndog -in mixed.trace                  # binary trace
//	syndog -in capture.pcap -prefix 152.2.0.0/16
//	syndog -in live:pcap:feed.pcap -prefix 152.2.0.0/16  # capture-path replay (file or FIFO)
//	syndog -in a.csv -a 0.2 -N 0.6          # site-tuned parameters
//	syndog -in mixed.trace -detector adaptive-ewma
//	syndog -in mixed.trace -track-sources   # per-source attribution
//
// live:pcap:PATH reads the file (or a FIFO fed by `tcpdump -w -`)
// through the capture frame parser — the portable half of the live
// subsystem — and is bit-identical to opening the same .pcap directly.
// Endless interface capture (live:IFACE) belongs to syndogd, which has
// an HTTP plane and a shutdown story; syndog is a finite-replay tool.
// Sources that shed records under backpressure report the count on
// exit ("records dropped: N") so loss is never silent.
//
// -track-sources runs a keyed CUSUM bank beside the aggregate
// detector (internal/sourcetrack) and appends a ranked per-source
// attribution block: which prefixes the flood evidence concentrates
// on. -key-bits sets the prefix width and -max-sources the bounded
// number of tracked keys.
//
// Exit status: 0 = no alarm, 2 = flooding alarm raised, 1 = error.
// The exit code is the aggregate detector's verdict; attribution
// annotates it without changing the contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syndog:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("syndog", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input capture: .trace/.bin (binary), .csv, .pcap, .ipt, .txt/.dump, or live:pcap:PATH (capture-path replay)")
		prefixStr  = fs.String("prefix", "", "stub prefix for pcap direction inference (e.g. 152.2.0.0/16)")
		detector   = fs.String("detector", "", "decision rule: "+strings.Join(ingest.DetectorNames(), ", ")+" (default syndog-cusum)")
		t0         = fs.Duration("t0", 20*time.Second, "observation period")
		offset     = fs.Float64("a", 0.35, "CUSUM offset a")
		threshold  = fs.Float64("N", 1.05, "flooding threshold N")
		alpha      = fs.Float64("alpha", 0.9, "EWMA memory for K-bar")
		verbose    = fs.Bool("v", false, "print every observation period")
		batch      = fs.Int("batch", ingest.DefaultChunk, "records per pipeline chunk; 0 replays record-at-a-time (same output, slower)")
		track      = fs.Bool("track-sources", false, "attribute detection per source prefix (keyed CUSUM bank)")
		keyBits    = fs.Int("key-bits", sourcetrack.DefaultKeyBits, "source key prefix width: 32 per host, 24, 16, ... (needs -track-sources)")
		maxSources = fs.Int("max-sources", sourcetrack.DefaultMaxSources, "per-source CUSUM states to keep (Space-Saving admission; needs -track-sources)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *in == "" {
		return 1, fmt.Errorf("missing -in")
	}
	var prefix netip.Prefix
	if *prefixStr != "" {
		var err error
		if prefix, err = netip.ParsePrefix(*prefixStr); err != nil {
			return 1, fmt.Errorf("prefix: %w", err)
		}
	}

	src, info, err := openInput(*in, prefix)
	if err != nil {
		return 1, err
	}
	defer src.Close()

	cusum := *detector == "" || *detector == "syndog-cusum"
	if !*track && (*keyBits != sourcetrack.DefaultKeyBits || *maxSources != sourcetrack.DefaultMaxSources) {
		return 1, fmt.Errorf("-key-bits/-max-sources need -track-sources")
	}
	var tracker *sourcetrack.Tracker
	if *track {
		// Offline replay is single-goroutine, so one shard keeps the
		// run bit-identical to a per-key agent bank.
		tracker, err = sourcetrack.New(sourcetrack.Config{
			KeyBits:    *keyBits,
			MaxSources: *maxSources,
			Shards:     1,
			Agent: core.Config{
				T0:        *t0,
				Alpha:     *alpha,
				Offset:    *offset,
				Threshold: *threshold,
			},
		})
		if err != nil {
			return 1, err
		}
	}

	det, err := ingest.NewDetector(*detector, ingest.DetectorConfig{
		Agent: core.Config{
			T0:        *t0,
			Alpha:     *alpha,
			Offset:    *offset,
			Threshold: *threshold,
		},
	})
	if err != nil {
		return 1, err
	}

	var sink ingest.Sink
	if *verbose {
		fmt.Fprintln(stdout, "period  end        outSYN  inSYN/ACK  K-bar      Xn        yn       alarm")
		sink = func(r core.Report) {
			mark := ""
			if r.Alarmed {
				mark = "  *** ALARM ***"
			}
			fmt.Fprintf(stdout, "%6d  %-9v %7d  %9d  %9.1f  %8.4f  %8.4f%s\n",
				r.Index, r.End, r.OutSYN, r.InSYNACK, r.K, r.X, r.Y, mark)
		}
	}

	// Both chunk sizes produce bit-identical reports (the equivalence
	// the ingest fuzz target pins); -batch 0 keeps the single-record
	// reference path reachable from the CLI.
	chunk := *batch
	if chunk == 0 {
		chunk = -1
	} else if chunk < 0 {
		return 1, fmt.Errorf("negative -batch %d", *batch)
	}
	p := &ingest.Pipeline{Source: src, Detector: det, T0: *t0, Sink: sink, Chunk: chunk}
	if tracker != nil {
		p.Tap = tracker
	}
	if err := p.Run(); err != nil {
		return 1, err
	}

	// Header-carried names (binary, CSV) beat the file path, matching
	// the materializing loaders.
	name := info.Name
	if ns, ok := src.(ingest.NamedSource); ok && ns.Name() != "" {
		name = ns.Name()
	}

	// The yn/N/K-bar summary only means something for the CUSUM rule;
	// baselines report their name instead of another rule's statistic.
	if cusum {
		fmt.Fprintf(stdout, "trace %q: %d periods of %v, K-bar %.1f\n",
			name, det.Periods(), *t0, det.KBar())
	} else {
		fmt.Fprintf(stdout, "trace %q: %d periods of %v, detector %s\n",
			name, det.Periods(), *t0, det.Name())
	}
	code := 0
	if al := det.FirstAlarm(); al != nil {
		if cusum {
			fmt.Fprintf(stdout, "FLOODING ALARM at period %d (t=%v, yn=%.3f > N=%.3g)\n",
				al.Period, al.At, al.Y, *threshold)
		} else {
			fmt.Fprintf(stdout, "FLOODING ALARM at period %d (t=%v, detector %s)\n",
				al.Period, al.At, det.Name())
		}
		fmt.Fprintln(stdout, "the flooding source is inside this stub network; trigger ingress filtering / MAC location")
		code = 2
	} else {
		fmt.Fprintln(stdout, "no flooding detected")
	}
	if tracker != nil {
		printSources(stdout, tracker)
	}
	// Backpressure loss is part of the verdict: a source that shed
	// records reports how many, so "no flooding detected" over a lossy
	// replay is never mistaken for a complete one.
	if dc, ok := src.(ingest.DropCounter); ok {
		fmt.Fprintf(stdout, "records dropped: %d\n", dc.Dropped())
	}
	return code, nil
}

// openInput opens the -in argument: live:pcap:PATH goes through the
// capture frame parser (bit-identical to the plain .pcap path — the
// equivalence the daemon suite pins), everything else through
// ingest.Open. live:IFACE is refused: an interface never reaches EOF,
// and endless capture belongs to syndogd.
func openInput(in string, prefix netip.Prefix) (ingest.Source, ingest.Info, error) {
	rest, ok := strings.CutPrefix(in, "live:")
	if !ok {
		return ingest.Open(in, prefix)
	}
	path, isPcap := strings.CutPrefix(rest, "pcap:")
	if !isPcap {
		return nil, ingest.Info{}, fmt.Errorf("live:%s: interface capture never ends — run it under syndogd; syndog replays finite streams (live:pcap:PATH)", rest)
	}
	if path == "" {
		return nil, ingest.Info{}, fmt.Errorf("live:pcap: needs a path (file or FIFO)")
	}
	if !prefix.IsValid() {
		return nil, ingest.Info{}, fmt.Errorf("live input %s needs -prefix for direction inference", in)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, ingest.Info{}, err
	}
	fr, err := capture.NewPcapReader(f, f)
	if err != nil {
		f.Close()
		return nil, ingest.Info{}, err
	}
	src, err := capture.NewSource(fr, capture.Config{StubPrefix: prefix, Name: in})
	if err != nil {
		fr.Close()
		return nil, ingest.Info{}, err
	}
	return src, ingest.Info{Name: in}, nil
}

// printSources renders the attribution block: the truncation ledger
// line, then the top keys ranked most-suspect first. The format is
// pinned by the CLI exec tests.
func printSources(w io.Writer, tracker *sourcetrack.Tracker) {
	cfg := tracker.Config()
	st := tracker.Stats()
	fmt.Fprintf(w, "sources: %d tracked /%d keys (max %d, %d evicted, %d alarmed)\n",
		st.Tracked, cfg.KeyBits, cfg.MaxSources, st.Evicted, st.Alarmed)
	top := tracker.Sources(10)
	if len(top) == 0 {
		return
	}
	fmt.Fprintln(w, "  rank  source                SYNs  periods        yn  state")
	for i, s := range top {
		state := "quiet"
		if s.Alarmed {
			state = fmt.Sprintf("ALARM p%d", s.AlarmPeriod)
		}
		fmt.Fprintf(w, "%6d  %-18s %7d  %7d  %8.3f  %s\n",
			i+1, s.Key, s.Count, s.Periods, s.Y, state)
	}
}
