// Command syndog runs the SYN-dog detector over a recorded trace and
// reports the per-period CUSUM state and any flooding alarm — the
// offline equivalent of the leaf-router agent.
//
// Usage:
//
//	syndog -in mixed.trace                  # binary trace
//	syndog -in capture.pcap -prefix 152.2.0.0/16
//	syndog -in a.csv -a 0.2 -N 0.6          # site-tuned parameters
//
// Exit status: 0 = no alarm, 2 = flooding alarm raised, 1 = error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syndog:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("syndog", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input trace: .trace/.bin (binary), .csv, or .pcap")
		prefixStr = fs.String("prefix", "", "stub prefix for pcap direction inference (e.g. 152.2.0.0/16)")
		t0        = fs.Duration("t0", 20*time.Second, "observation period")
		offset    = fs.Float64("a", 0.35, "CUSUM offset a")
		threshold = fs.Float64("N", 1.05, "flooding threshold N")
		alpha     = fs.Float64("alpha", 0.9, "EWMA memory for K-bar")
		verbose   = fs.Bool("v", false, "print every observation period")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *in == "" {
		return 1, fmt.Errorf("missing -in")
	}

	tr, err := loadTrace(*in, *prefixStr)
	if err != nil {
		return 1, err
	}

	agent, err := core.NewAgent(core.Config{
		T0:        *t0,
		Alpha:     *alpha,
		Offset:    *offset,
		Threshold: *threshold,
	})
	if err != nil {
		return 1, err
	}
	reports, err := agent.ProcessTrace(tr)
	if err != nil {
		return 1, err
	}

	if *verbose {
		fmt.Fprintln(stdout, "period  end        outSYN  inSYN/ACK  K-bar      Xn        yn       alarm")
		for _, r := range reports {
			mark := ""
			if r.Alarmed {
				mark = "  *** ALARM ***"
			}
			fmt.Fprintf(stdout, "%6d  %-9v %7d  %9d  %9.1f  %8.4f  %8.4f%s\n",
				r.Index, r.End, r.OutSYN, r.InSYNACK, r.K, r.X, r.Y, mark)
		}
	}

	fmt.Fprintf(stdout, "trace %q: %d periods of %v, K-bar %.1f\n",
		tr.Name, len(reports), *t0, agent.KBar())
	if al := agent.FirstAlarm(); al != nil {
		fmt.Fprintf(stdout, "FLOODING ALARM at period %d (t=%v, yn=%.3f > N=%.3g)\n",
			al.Period, al.At, al.Y, *threshold)
		fmt.Fprintln(stdout, "the flooding source is inside this stub network; trigger ingress filtering / MAC location")
		return 2, nil
	}
	fmt.Fprintln(stdout, "no flooding detected")
	return 0, nil
}

// loadTrace delegates to trace.Load, which picks the codec from the
// extension (.trace/.bin/.csv/.pcap/.txt/.dump, each optionally .gz).
func loadTrace(path, prefixStr string) (*trace.Trace, error) {
	var prefix netip.Prefix
	if prefixStr != "" {
		var err error
		if prefix, err = netip.ParsePrefix(prefixStr); err != nil {
			return nil, fmt.Errorf("prefix: %w", err)
		}
	}
	return trace.Load(path, prefix)
}
