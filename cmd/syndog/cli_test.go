package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the syndog binary a single time per test run so
// the CLI tests exercise the real executable: flag parsing, stderr
// prefix, and — the part in-process tests cannot see — the process
// exit status contract (0 = quiet, 2 = alarm, 1 = error). The build
// directory outlives any single test; TestMain removes it.
var buildOnce struct {
	sync.Once
	dir string
	bin string
	err error
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildOnce.dir != "" {
		os.RemoveAll(buildOnce.dir)
	}
	os.Exit(code)
}

func buildCLI(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "syndog-cli")
		if err != nil {
			buildOnce.err = err
			return
		}
		buildOnce.dir = dir
		bin := filepath.Join(dir, "syndog")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			t.Logf("go build: %s", out)
			buildOnce.err = err
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

// runCLI executes the built binary and returns its exit code, stdout
// and stderr.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(buildCLI(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		exitErr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = exitErr.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

func TestCLIExitZeroOnQuietTrace(t *testing.T) {
	path := writeTempTrace(t, benignTrace(t), "bg.trace")
	code, stdout, _ := runCLI(t, "-in", path)
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout, "no flooding detected") {
		t.Errorf("stdout = %q", stdout)
	}
}

func TestCLIExitTwoOnAlarm(t *testing.T) {
	tr := floodedTrace(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"mixed.trace", nil},
		{"mixed.csv", nil},
		{"mixed.pcap", []string{"-prefix", "130.216.0.0/16"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTempTrace(t, tr, tc.name)
			code, stdout, _ := runCLI(t, append([]string{"-in", path}, tc.args...)...)
			if code != 2 {
				t.Errorf("exit code = %d, want 2", code)
			}
			if !strings.Contains(stdout, "FLOODING ALARM") {
				t.Errorf("stdout = %q", stdout)
			}
		})
	}
}

func TestCLIExitOneOnError(t *testing.T) {
	pcap := writeTempTrace(t, floodedTrace(t), "mixed.pcap")
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"missing -in", nil},
		{"nonexistent file", []string{"-in", filepath.Join(t.TempDir(), "nope.trace")}},
		{"pcap without prefix", []string{"-in", pcap}},
		{"unknown detector", []string{"-in", pcap, "-prefix", "130.216.0.0/16", "-detector", "psychic"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Errorf("exit code = %d, want 1", code)
			}
			if !strings.Contains(stderr, "syndog:") {
				t.Errorf("stderr = %q, want syndog: prefix", stderr)
			}
		})
	}
}

func TestCLIDetectorFlag(t *testing.T) {
	path := writeTempTrace(t, floodedTrace(t), "mixed.trace")
	// The static threshold (default 250 SYN/period) trips on the flood
	// tail of the mixed trace just like the CUSUM does.
	code, stdout, _ := runCLI(t, "-in", path, "-detector", "static-threshold")
	if code != 2 {
		t.Errorf("static-threshold exit code = %d, want 2 (stdout %q)", code, stdout)
	}
}
