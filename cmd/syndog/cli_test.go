package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the syndog binary a single time per test run so
// the CLI tests exercise the real executable: flag parsing, stderr
// prefix, and — the part in-process tests cannot see — the process
// exit status contract (0 = quiet, 2 = alarm, 1 = error). The build
// directory outlives any single test; TestMain removes it.
var buildOnce struct {
	sync.Once
	dir string
	bin string
	err error
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildOnce.dir != "" {
		os.RemoveAll(buildOnce.dir)
	}
	os.Exit(code)
}

func buildCLI(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "syndog-cli")
		if err != nil {
			buildOnce.err = err
			return
		}
		buildOnce.dir = dir
		bin := filepath.Join(dir, "syndog")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			t.Logf("go build: %s", out)
			buildOnce.err = err
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

// runCLI executes the built binary and returns its exit code, stdout
// and stderr.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(buildCLI(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		exitErr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = exitErr.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

func TestCLIExitZeroOnQuietTrace(t *testing.T) {
	path := writeTempTrace(t, benignTrace(t), "bg.trace")
	code, stdout, _ := runCLI(t, "-in", path)
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout, "no flooding detected") {
		t.Errorf("stdout = %q", stdout)
	}
}

func TestCLIExitTwoOnAlarm(t *testing.T) {
	tr := floodedTrace(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"mixed.trace", nil},
		{"mixed.csv", nil},
		{"mixed.pcap", []string{"-prefix", "130.216.0.0/16"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTempTrace(t, tr, tc.name)
			code, stdout, _ := runCLI(t, append([]string{"-in", path}, tc.args...)...)
			if code != 2 {
				t.Errorf("exit code = %d, want 2", code)
			}
			if !strings.Contains(stdout, "FLOODING ALARM") {
				t.Errorf("stdout = %q", stdout)
			}
		})
	}
}

func TestCLIExitOneOnError(t *testing.T) {
	pcap := writeTempTrace(t, floodedTrace(t), "mixed.pcap")
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"missing -in", nil},
		{"nonexistent file", []string{"-in", filepath.Join(t.TempDir(), "nope.trace")}},
		{"pcap without prefix", []string{"-in", pcap}},
		{"unknown detector", []string{"-in", pcap, "-prefix", "130.216.0.0/16", "-detector", "psychic"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Errorf("exit code = %d, want 1", code)
			}
			if !strings.Contains(stderr, "syndog:") {
				t.Errorf("stderr = %q, want syndog: prefix", stderr)
			}
		})
	}
}

func TestCLIDetectorFlag(t *testing.T) {
	path := writeTempTrace(t, floodedTrace(t), "mixed.trace")
	// The static threshold (default 250 SYN/period) trips on the flood
	// tail of the mixed trace just like the CUSUM does.
	code, stdout, _ := runCLI(t, "-in", path, "-detector", "static-threshold")
	if code != 2 {
		t.Errorf("static-threshold exit code = %d, want 2 (stdout %q)", code, stdout)
	}
}

// TestCLITrackSources pins the -track-sources attribution block —
// format and placement after the aggregate verdict — and that the
// 0/2 exit contract is untouched by tracking, over every input
// format. The flood spoofs sources across 240.0.0.0/4, so /8 keying
// concentrates it onto a handful of alarmed keys.
func TestCLITrackSources(t *testing.T) {
	headerRe := regexp.MustCompile(`(?m)^sources: \d+ tracked /8 keys \(max 64, \d+ evicted, \d+ alarmed\)$`)
	columnsRe := regexp.MustCompile(`(?m)^  rank  source                SYNs  periods        yn  state$`)
	topRowRe := regexp.MustCompile(`(?m)^     1  2((4\d)|(5[0-5]))\.0\.0\.0/8 +\d+ +\d+ +\d+\.\d{3}  ALARM p\d+$`)

	tr := floodedTrace(t)
	track := []string{"-track-sources", "-key-bits", "8", "-max-sources", "64"}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"mixed.trace", nil},
		{"mixed.csv", nil},
		{"mixed.pcap", []string{"-prefix", "130.216.0.0/16"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTempTrace(t, tr, tc.name)
			args := append([]string{"-in", path}, append(tc.args, track...)...)
			code, stdout, stderr := runCLI(t, args...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr %q)", code, stderr)
			}
			alarmAt := strings.Index(stdout, "FLOODING ALARM")
			sourcesAt := strings.Index(stdout, "sources:")
			if alarmAt < 0 || sourcesAt < alarmAt {
				t.Fatalf("attribution must follow the aggregate verdict:\n%s", stdout)
			}
			for _, re := range []*regexp.Regexp{headerRe, columnsRe, topRowRe} {
				if !re.MatchString(stdout) {
					t.Errorf("stdout missing %v:\n%s", re, stdout)
				}
			}
		})
	}

	// A quiet trace keeps exit 0 and reports zero alarmed sources.
	quiet := writeTempTrace(t, benignTrace(t), "bg.trace")
	code, stdout, _ := runCLI(t, append([]string{"-in", quiet}, track...)...)
	if code != 0 {
		t.Fatalf("quiet exit code = %d, want 0", code)
	}
	if !regexp.MustCompile(`(?m)^sources: \d+ tracked /8 keys \(max 64, \d+ evicted, 0 alarmed\)$`).MatchString(stdout) {
		t.Errorf("quiet attribution header wrong:\n%s", stdout)
	}

	// Keyed flags without -track-sources are a usage error (exit 1).
	code, _, stderr := runCLI(t, "-in", quiet, "-key-bits", "8")
	if code != 1 || !strings.Contains(stderr, "-track-sources") {
		t.Errorf("keyed flags without tracking: code %d stderr %q", code, stderr)
	}
}
