// Command benchjson distills `go test -bench` output into a JSON
// baseline: one entry per benchmark mapping its name to the median
// ns/op, B/op and allocs/op across however many -count samples the run
// produced. The repository commits the result (BENCH_pr8.json, via
// `make bench`) so performance changes diff against a recorded
// trajectory instead of a rerun.
//
// With -baseline the distilled run is instead diffed against a
// committed baseline and the exit status becomes a regression gate:
// nonzero when any benchmark present in both runs slows down by more
// than -tolerance (default 10%) in ns/op, or allocates more per op at
// all. -hot restricts the gate to benchmarks matching a regexp (the
// hot-path set); everything else is reported but never fails the gate.
// Benchmarks missing from either side are reported and skipped — a new
// benchmark must not fail CI for existing without history.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=6 . | benchjson -o BENCH_pr8.json
//	go test -run '^$' -bench . -benchmem -count=3 . | benchjson -baseline BENCH_pr8.json -hot 'Ingest|Sweep'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Stats is the distilled result for one benchmark.
type Stats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds the medians of any custom b.ReportMetric columns
	// (e.g. records/s from the streaming-ingestion benchmark).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Samples int                `json:"samples"`
}

// benchLine matches one result line of -benchmem output, optionally
// carrying custom b.ReportMetric columns between ns/op and B/op, e.g.
//
//	BenchmarkSweepFastPath-8   2   7266558 ns/op   71412 B/op   54 allocs/op
//	BenchmarkStreamingIngestPcap   162   7229588 ns/op   1532042 records/s   5008 B/op   21 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op((?:\s+[\d.]+ \S+)*?)\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

// metricCol picks the individual custom columns out of benchLine's
// middle capture.
var metricCol = regexp.MustCompile(`([\d.]+) (\S+)`)

type samples struct {
	ns, bytes, allocs []float64
	metrics           map[string][]float64
}

// parse collects per-benchmark samples from a benchmark output stream.
// Lines that are not -benchmem result lines (headers, PASS, package
// summaries, benchmarks run without -benchmem) are ignored.
func parse(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		var ns, bytes, allocs float64
		for i, s := range []string{m[2], m[4], m[5]} {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", s, sc.Text(), err)
			}
			switch i {
			case 0:
				ns = v
			case 1:
				bytes = v
			case 2:
				allocs = v
			}
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{metrics: make(map[string][]float64)}
			out[m[1]] = s
		}
		s.ns = append(s.ns, ns)
		s.bytes = append(s.bytes, bytes)
		s.allocs = append(s.allocs, allocs)
		for _, mc := range metricCol.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mc[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric %q in %q: %v", mc[1], sc.Text(), err)
			}
			s.metrics[mc[2]] = append(s.metrics[mc[2]], v)
		}
	}
	return out, sc.Err()
}

// median is robust to the odd outlier sample a shared machine
// produces; with an even count it averages the middle pair.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func distill(raw map[string]*samples) map[string]Stats {
	out := make(map[string]Stats, len(raw))
	for name, s := range raw {
		st := Stats{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
			Samples:     len(s.ns),
		}
		if len(s.metrics) > 0 {
			st.Metrics = make(map[string]float64, len(s.metrics))
			for unit, vs := range s.metrics {
				st.Metrics[unit] = median(vs)
			}
		}
		out[name] = st
	}
	return out
}

func run(in io.Reader, out io.Writer) error {
	raw, err := parse(in)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input (need -benchmem output)")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(distill(raw))
}

// errRegression is the gate verdict: compare found at least one
// hot-path benchmark over tolerance. main maps it to exit status 1
// with the offending lines already printed.
var errRegression = fmt.Errorf("benchjson: regression gate failed")

// compare diffs a fresh run against a committed baseline, writing one
// line per benchmark, and returns errRegression when a gated benchmark
// regresses: ns/op beyond tolerance, or any allocs/op increase (alloc
// counts are deterministic, so any growth is a real code change, not
// noise). hot, when non-nil, limits the gate to matching names.
func compare(in io.Reader, out io.Writer, baseline map[string]Stats, tolerance float64, hot *regexp.Regexp) error {
	raw, err := parse(in)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input (need -benchmem output)")
	}
	fresh := distill(raw)

	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		cur := fresh[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(out, "NEW   %-40s %12.0f ns/op %8.0f allocs/op (no baseline)\n",
				name, cur.NsPerOp, cur.AllocsPerOp)
			continue
		}
		gated := hot == nil || hot.MatchString(name)
		delta := 0.0
		if base.NsPerOp > 0 {
			delta = cur.NsPerOp/base.NsPerOp - 1
		}
		verdict := "ok   "
		switch {
		case gated && delta > tolerance:
			verdict = "SLOW "
			failed = true
		case gated && cur.AllocsPerOp > base.AllocsPerOp:
			verdict = "ALLOC"
			failed = true
		case !gated:
			verdict = "info "
		}
		fmt.Fprintf(out, "%s %-40s %12.0f -> %12.0f ns/op (%+6.1f%%)  %6.0f -> %6.0f allocs/op\n",
			verdict, name, base.NsPerOp, cur.NsPerOp, delta*100, base.AllocsPerOp, cur.AllocsPerOp)
	}
	for name := range baseline {
		if _, ok := fresh[name]; !ok {
			fmt.Fprintf(out, "GONE  %-40s (in baseline, not in this run)\n", name)
		}
	}
	if failed {
		return errRegression
	}
	return nil
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	baselinePath := flag.String("baseline", "", "diff against this committed baseline JSON and gate on regressions instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op slowdown before the gate fails (with -baseline)")
	hotPat := flag.String("hot", "", "regexp naming the hot-path benchmarks the gate enforces; empty gates everything (with -baseline)")
	flag.Parse()

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var baseline map[string]Stats
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		var hot *regexp.Regexp
		if *hotPat != "" {
			if hot, err = regexp.Compile(*hotPat); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -hot: %v\n", err)
				os.Exit(2)
			}
		}
		if err := compare(os.Stdin, os.Stdout, baseline, *tolerance, hot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
