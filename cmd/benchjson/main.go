// Command benchjson distills `go test -bench` output into a JSON
// baseline: one entry per benchmark mapping its name to the median
// ns/op, B/op and allocs/op across however many -count samples the run
// produced. The repository commits the result (BENCH_pr3.json, via
// `make bench`) so performance changes diff against a recorded
// trajectory instead of a rerun.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=6 . | benchjson -o BENCH_pr3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Stats is the distilled result for one benchmark.
type Stats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// benchLine matches one result line of -benchmem output, e.g.
//
//	BenchmarkSweepFastPath-8   2   7266558 ns/op   71412 B/op   54 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

type samples struct {
	ns, bytes, allocs []float64
}

// parse collects per-benchmark samples from a benchmark output stream.
// Lines that are not -benchmem result lines (headers, PASS, package
// summaries, benchmarks run without -benchmem) are ignored.
func parse(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		vals := make([]float64, 3)
		for i, s := range m[2:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", s, sc.Text(), err)
			}
			vals[i] = v
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{}
			out[m[1]] = s
		}
		s.ns = append(s.ns, vals[0])
		s.bytes = append(s.bytes, vals[1])
		s.allocs = append(s.allocs, vals[2])
	}
	return out, sc.Err()
}

// median is robust to the odd outlier sample a shared machine
// produces; with an even count it averages the middle pair.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func distill(raw map[string]*samples) map[string]Stats {
	out := make(map[string]Stats, len(raw))
	for name, s := range raw {
		out[name] = Stats{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
			Samples:     len(s.ns),
		}
	}
	return out
}

func run(in io.Reader, out io.Writer) error {
	raw, err := parse(in)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input (need -benchmem output)")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(distill(raw))
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
