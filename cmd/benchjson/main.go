// Command benchjson distills `go test -bench` output into a JSON
// baseline: one entry per benchmark mapping its name to the median
// ns/op, B/op and allocs/op across however many -count samples the run
// produced. The repository commits the result (BENCH_pr4.json, via
// `make bench`) so performance changes diff against a recorded
// trajectory instead of a rerun.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=6 . | benchjson -o BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Stats is the distilled result for one benchmark.
type Stats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds the medians of any custom b.ReportMetric columns
	// (e.g. records/s from the streaming-ingestion benchmark).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Samples int                `json:"samples"`
}

// benchLine matches one result line of -benchmem output, optionally
// carrying custom b.ReportMetric columns between ns/op and B/op, e.g.
//
//	BenchmarkSweepFastPath-8   2   7266558 ns/op   71412 B/op   54 allocs/op
//	BenchmarkStreamingIngestPcap   162   7229588 ns/op   1532042 records/s   5008 B/op   21 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op((?:\s+[\d.]+ \S+)*?)\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

// metricCol picks the individual custom columns out of benchLine's
// middle capture.
var metricCol = regexp.MustCompile(`([\d.]+) (\S+)`)

type samples struct {
	ns, bytes, allocs []float64
	metrics           map[string][]float64
}

// parse collects per-benchmark samples from a benchmark output stream.
// Lines that are not -benchmem result lines (headers, PASS, package
// summaries, benchmarks run without -benchmem) are ignored.
func parse(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		var ns, bytes, allocs float64
		for i, s := range []string{m[2], m[4], m[5]} {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", s, sc.Text(), err)
			}
			switch i {
			case 0:
				ns = v
			case 1:
				bytes = v
			case 2:
				allocs = v
			}
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{metrics: make(map[string][]float64)}
			out[m[1]] = s
		}
		s.ns = append(s.ns, ns)
		s.bytes = append(s.bytes, bytes)
		s.allocs = append(s.allocs, allocs)
		for _, mc := range metricCol.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mc[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric %q in %q: %v", mc[1], sc.Text(), err)
			}
			s.metrics[mc[2]] = append(s.metrics[mc[2]], v)
		}
	}
	return out, sc.Err()
}

// median is robust to the odd outlier sample a shared machine
// produces; with an even count it averages the middle pair.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func distill(raw map[string]*samples) map[string]Stats {
	out := make(map[string]Stats, len(raw))
	for name, s := range raw {
		st := Stats{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
			Samples:     len(s.ns),
		}
		if len(s.metrics) > 0 {
			st.Metrics = make(map[string]float64, len(s.metrics))
			for unit, vs := range s.metrics {
				st.Metrics[unit] = median(vs)
			}
		}
		out[name] = st
	}
	return out
}

func run(in io.Reader, out io.Writer) error {
	raw, err := parse(in)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input (need -benchmem output)")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(distill(raw))
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
