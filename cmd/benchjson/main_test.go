package main

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepFastPath      	       2	   7266558 ns/op	   71412 B/op	      54 allocs/op
BenchmarkSweepFastPath      	       2	   7000000 ns/op	   71000 B/op	      54 allocs/op
BenchmarkSweepFastPath      	       2	   9999999 ns/op	   80000 B/op	      55 allocs/op
BenchmarkRunCellFastPath-8  	   13062	     90839 ns/op	    1568 B/op	       2 allocs/op
BenchmarkStreamingIngestPcap	     162	   7229588 ns/op	   1532042 records/s	    5008 B/op	      21 allocs/op
BenchmarkStreamingIngestPcap	     159	   7166086 ns/op	   1545618 records/s	    5008 B/op	      21 allocs/op
BenchmarkStreamingIngestPcap	     154	   7217385 ns/op	   1534632 records/s	    5008 B/op	      21 allocs/op
BenchmarkNoMem              	     100	     12345 ns/op
PASS
ok  	repro	1.747s
`

func TestParseAndDistill(t *testing.T) {
	raw, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	stats := distill(raw)
	fast, ok := stats["BenchmarkSweepFastPath"]
	if !ok {
		t.Fatalf("BenchmarkSweepFastPath missing from %v", stats)
	}
	if fast.Samples != 3 || fast.NsPerOp != 7266558 || fast.AllocsPerOp != 54 {
		t.Errorf("median of 3 samples wrong: %+v", fast)
	}
	// The -8 GOMAXPROCS suffix is stripped, so reruns on different
	// machines aggregate under one name.
	cell, ok := stats["BenchmarkRunCellFastPath"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", stats)
	}
	if cell.Samples != 1 || cell.BytesPerOp != 1568 {
		t.Errorf("cell stats wrong: %+v", cell)
	}
	// Custom b.ReportMetric columns between ns/op and B/op must not
	// break the standard columns, and their medians are recorded.
	stream, ok := stats["BenchmarkStreamingIngestPcap"]
	if !ok {
		t.Fatalf("custom-metric line not parsed: %v", stats)
	}
	if stream.Samples != 3 || stream.NsPerOp != 7217385 ||
		stream.BytesPerOp != 5008 || stream.AllocsPerOp != 21 {
		t.Errorf("custom-metric stats wrong: %+v", stream)
	}
	if got := stream.Metrics["records/s"]; got != 1534632 {
		t.Errorf("records/s median = %v, want 1534632", got)
	}
	// Lines without -benchmem columns are skipped, not misparsed.
	if _, ok := stats["BenchmarkNoMem"]; ok {
		t.Error("benchmark without allocation columns should be ignored")
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{1, 2, 3, 100}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func TestRunEmitsSortedJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Stats
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 3 {
		t.Errorf("got %d entries, want 3: %v", len(decoded), decoded)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader("PASS\n"), &buf); err == nil {
		t.Error("empty benchmark stream accepted")
	}
}

// gateBaseline matches the sample run: SweepFastPath at its median,
// RunCellFastPath much faster than the sample (a regression), and
// StreamingIngestPcap with fewer allocs than the sample reports.
func gateBaseline(t *testing.T) map[string]Stats {
	t.Helper()
	return map[string]Stats{
		"BenchmarkSweepFastPath":       {NsPerOp: 7266558, AllocsPerOp: 54},
		"BenchmarkRunCellFastPath":     {NsPerOp: 50000, AllocsPerOp: 2},
		"BenchmarkStreamingIngestPcap": {NsPerOp: 7217385, AllocsPerOp: 21},
		"BenchmarkRetired":             {NsPerOp: 1, AllocsPerOp: 0},
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	var buf bytes.Buffer
	err := compare(strings.NewReader(sample), &buf, gateBaseline(t), 0.10, nil)
	if err == nil {
		t.Fatalf("81%% ns/op regression passed the 10%% gate:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "SLOW  BenchmarkRunCellFastPath") {
		t.Errorf("regressed benchmark not flagged SLOW:\n%s", out)
	}
	if !strings.Contains(out, "ok    BenchmarkSweepFastPath") {
		t.Errorf("unchanged benchmark not marked ok:\n%s", out)
	}
	if !strings.Contains(out, "GONE  BenchmarkRetired") {
		t.Errorf("baseline-only benchmark not reported:\n%s", out)
	}
}

func TestCompareHotScopesGate(t *testing.T) {
	var buf bytes.Buffer
	// Only Ingest benchmarks are gated; the RunCell regression becomes
	// informational.
	hot := regexp.MustCompile(`Ingest`)
	if err := compare(strings.NewReader(sample), &buf, gateBaseline(t), 0.10, hot); err != nil {
		t.Fatalf("non-hot regression failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "info  BenchmarkRunCellFastPath") {
		t.Errorf("ungated benchmark not downgraded to info:\n%s", buf.String())
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	base := gateBaseline(t)
	st := base["BenchmarkStreamingIngestPcap"]
	st.AllocsPerOp = 20 // sample reports 21: any growth fails
	base["BenchmarkStreamingIngestPcap"] = st
	var buf bytes.Buffer
	err := compare(strings.NewReader(sample), &buf, base, 0.10, regexp.MustCompile(`Ingest`))
	if err == nil {
		t.Fatalf("allocs/op increase passed the gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ALLOC BenchmarkStreamingIngestPcap") {
		t.Errorf("alloc growth not flagged:\n%s", buf.String())
	}
}

func TestCompareNewBenchmarkPasses(t *testing.T) {
	var buf bytes.Buffer
	base := map[string]Stats{"BenchmarkSweepFastPath": {NsPerOp: 7266558, AllocsPerOp: 54}}
	if err := compare(strings.NewReader(sample), &buf, base, 0.10, nil); err != nil {
		t.Fatalf("run with new benchmarks failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "NEW   BenchmarkRunCellFastPath") {
		t.Errorf("new benchmark not reported:\n%s", buf.String())
	}
}
