package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepFastPath      	       2	   7266558 ns/op	   71412 B/op	      54 allocs/op
BenchmarkSweepFastPath      	       2	   7000000 ns/op	   71000 B/op	      54 allocs/op
BenchmarkSweepFastPath      	       2	   9999999 ns/op	   80000 B/op	      55 allocs/op
BenchmarkRunCellFastPath-8  	   13062	     90839 ns/op	    1568 B/op	       2 allocs/op
BenchmarkNoMem              	     100	     12345 ns/op
PASS
ok  	repro	1.747s
`

func TestParseAndDistill(t *testing.T) {
	raw, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	stats := distill(raw)
	fast, ok := stats["BenchmarkSweepFastPath"]
	if !ok {
		t.Fatalf("BenchmarkSweepFastPath missing from %v", stats)
	}
	if fast.Samples != 3 || fast.NsPerOp != 7266558 || fast.AllocsPerOp != 54 {
		t.Errorf("median of 3 samples wrong: %+v", fast)
	}
	// The -8 GOMAXPROCS suffix is stripped, so reruns on different
	// machines aggregate under one name.
	cell, ok := stats["BenchmarkRunCellFastPath"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", stats)
	}
	if cell.Samples != 1 || cell.BytesPerOp != 1568 {
		t.Errorf("cell stats wrong: %+v", cell)
	}
	// Lines without -benchmem columns are skipped, not misparsed.
	if _, ok := stats["BenchmarkNoMem"]; ok {
		t.Error("benchmark without allocation columns should be ignored")
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{1, 2, 3, 100}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func TestRunEmitsSortedJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Stats
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Errorf("got %d entries, want 2: %v", len(decoded), decoded)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader("PASS\n"), &buf); err == nil {
		t.Error("empty benchmark stream accepted")
	}
}
