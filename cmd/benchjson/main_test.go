package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepFastPath      	       2	   7266558 ns/op	   71412 B/op	      54 allocs/op
BenchmarkSweepFastPath      	       2	   7000000 ns/op	   71000 B/op	      54 allocs/op
BenchmarkSweepFastPath      	       2	   9999999 ns/op	   80000 B/op	      55 allocs/op
BenchmarkRunCellFastPath-8  	   13062	     90839 ns/op	    1568 B/op	       2 allocs/op
BenchmarkStreamingIngestPcap	     162	   7229588 ns/op	   1532042 records/s	    5008 B/op	      21 allocs/op
BenchmarkStreamingIngestPcap	     159	   7166086 ns/op	   1545618 records/s	    5008 B/op	      21 allocs/op
BenchmarkStreamingIngestPcap	     154	   7217385 ns/op	   1534632 records/s	    5008 B/op	      21 allocs/op
BenchmarkNoMem              	     100	     12345 ns/op
PASS
ok  	repro	1.747s
`

func TestParseAndDistill(t *testing.T) {
	raw, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	stats := distill(raw)
	fast, ok := stats["BenchmarkSweepFastPath"]
	if !ok {
		t.Fatalf("BenchmarkSweepFastPath missing from %v", stats)
	}
	if fast.Samples != 3 || fast.NsPerOp != 7266558 || fast.AllocsPerOp != 54 {
		t.Errorf("median of 3 samples wrong: %+v", fast)
	}
	// The -8 GOMAXPROCS suffix is stripped, so reruns on different
	// machines aggregate under one name.
	cell, ok := stats["BenchmarkRunCellFastPath"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", stats)
	}
	if cell.Samples != 1 || cell.BytesPerOp != 1568 {
		t.Errorf("cell stats wrong: %+v", cell)
	}
	// Custom b.ReportMetric columns between ns/op and B/op must not
	// break the standard columns, and their medians are recorded.
	stream, ok := stats["BenchmarkStreamingIngestPcap"]
	if !ok {
		t.Fatalf("custom-metric line not parsed: %v", stats)
	}
	if stream.Samples != 3 || stream.NsPerOp != 7217385 ||
		stream.BytesPerOp != 5008 || stream.AllocsPerOp != 21 {
		t.Errorf("custom-metric stats wrong: %+v", stream)
	}
	if got := stream.Metrics["records/s"]; got != 1534632 {
		t.Errorf("records/s median = %v, want 1534632", got)
	}
	// Lines without -benchmem columns are skipped, not misparsed.
	if _, ok := stats["BenchmarkNoMem"]; ok {
		t.Error("benchmark without allocation columns should be ignored")
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{1, 2, 3, 100}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func TestRunEmitsSortedJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Stats
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 3 {
		t.Errorf("got %d entries, want 3: %v", len(decoded), decoded)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader("PASS\n"), &buf); err == nil {
		t.Error("empty benchmark stream accepted")
	}
}
