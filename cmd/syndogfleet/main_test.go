package main

import "testing"

func TestFleetEndToEnd(t *testing.T) {
	// Small but complete fleet: the run fails with an error when any
	// stub's verdict disagrees with ground truth, so a nil error is
	// the assertion.
	err := run([]string{
		"-stubs", "4", "-flooders", "2", "-rate", "160",
		"-duration", "90s", "-onset", "30s", "-t0", "10s", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetNoFlooders(t *testing.T) {
	// All-clean fleet: nobody may alarm.
	err := run([]string{
		"-stubs", "3", "-flooders", "0", "-duration", "60s", "-onset", "20s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetValidation(t *testing.T) {
	if err := run([]string{"-stubs", "2", "-flooders", "5"}); err == nil {
		t.Error("flooders > stubs accepted")
	}
	if err := run([]string{"-stubs", "0"}); err == nil {
		t.Error("zero stubs accepted")
	}
	if err := run([]string{"-stubs", "1000"}); err == nil {
		t.Error("absurd stub count accepted")
	}
}
