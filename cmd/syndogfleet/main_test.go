package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/sourcetrack"
)

func TestFleetEndToEnd(t *testing.T) {
	// Small but complete fleet: the run fails with an error when any
	// stub's verdict disagrees with ground truth, so a nil error is
	// the assertion.
	err := run([]string{
		"-stubs", "4", "-flooders", "2", "-rate", "160",
		"-duration", "90s", "-onset", "30s", "-t0", "10s", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetNoFlooders(t *testing.T) {
	// All-clean fleet: nobody may alarm.
	err := run([]string{
		"-stubs", "3", "-flooders", "0", "-duration", "60s", "-onset", "20s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetValidation(t *testing.T) {
	if err := run([]string{"-stubs", "2", "-flooders", "5"}); err == nil {
		t.Error("flooders > stubs accepted")
	}
	if err := run([]string{"-stubs", "0"}); err == nil {
		t.Error("zero stubs accepted")
	}
	if err := run([]string{"-stubs", "1000"}); err == nil {
		t.Error("absurd stub count accepted")
	}
	if err := run([]string{"-trials", "0"}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestFleetParallelTrials(t *testing.T) {
	// Two independent campaigns fanned over two workers; each must
	// still agree with its own ground truth.
	err := run([]string{
		"-stubs", "3", "-flooders", "1", "-rate", "80",
		"-duration", "60s", "-onset", "20s", "-seed", "5",
		"-trials", "2", "-parallel", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetCampaignDeterministic(t *testing.T) {
	cfg := campaignConfig{
		stubs: 3, flooders: 1, totalRate: 80,
		duration: 60 * time.Second, onset: 20 * time.Second,
		t0: 10 * time.Second, benign: 40, seed: 7,
	}
	var a, b bytes.Buffer
	if err := runCampaign(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if err := runCampaign(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different reports:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
	if !bytes.Contains(a.Bytes(), []byte("recordsDropped: ")) {
		t.Errorf("report missing the recordsDropped ledger line:\n%s", a.String())
	}
}

func TestFleetSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-stubs", "3", "-flooders", "1", "-rate", "80",
		"-duration", "60s", "-onset", "20s", "-t0", "10s", "-seed", "3",
		"-snapshot-dir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every stub's agent must be on disk as a resumable snapshot with
	// the campaign's config; stub 0 hosted the slave, so its restored
	// agent must still carry the alarm.
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("stub%02d.json", i))
		agent, resumed, err := daemon.LoadOrNewAgent(path, core.Config{T0: 10 * time.Second})
		if err != nil {
			t.Fatalf("stub %d: %v", i, err)
		}
		if !resumed {
			t.Fatalf("stub %d: snapshot missing", i)
		}
		if len(agent.Reports()) == 0 {
			t.Errorf("stub %d: empty report history", i)
		}
		if wantAlarm := i == 0; agent.Alarmed() != wantAlarm {
			t.Errorf("stub %d: alarmed = %v, want %v", i, agent.Alarmed(), wantAlarm)
		}
	}
	// A mismatched config must refuse the fleet snapshot, same as any
	// other resume.
	path := filepath.Join(dir, "stub00.json")
	if _, _, err := daemon.LoadOrNewAgent(path, core.Config{}); err == nil {
		t.Error("fleet snapshot resumed under wrong t0")
	}
}

func TestFleetSnapshotDirPerTrial(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-stubs", "2", "-flooders", "1", "-rate", "80",
		"-duration", "60s", "-onset", "20s", "-t0", "10s", "-seed", "3",
		"-trials", "2", "-parallel", "2", "-snapshot-dir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		path := filepath.Join(dir, fmt.Sprintf("trial%d", trial), "stub00.json")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("trial %d snapshot: %v", trial, err)
		}
	}
}

// TestFleetSnapshotCarriesKeyedState: the fleet's snapshots include
// the keyed per-source half, so syndogd -track-sources resumes the
// attribution evidence too, not just the aggregate CUSUM. Before this,
// WriteSnapshotFile dropped the tracker state on the floor.
func TestFleetSnapshotCarriesKeyedState(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-stubs", "3", "-flooders", "1", "-rate", "80",
		"-duration", "60s", "-onset", "20s", "-t0", "10s", "-seed", "3",
		"-snapshot-dir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	track := &sourcetrack.Config{
		KeyBits:    8,
		MaxSources: 64,
		Shards:     1,
		Agent:      core.Config{T0: 10 * time.Second},
	}
	// Stub 0 hosted the slave: its keyed half must restore with the
	// flood evidence intact — tracked sources, and at least one keyed
	// alarm pointing at the spoofed blocks.
	path := filepath.Join(dir, "stub00.json")
	agent, tracker, resumed, err := daemon.LoadOrNewState(path, core.Config{T0: 10 * time.Second}, track)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || tracker == nil {
		t.Fatalf("resumed = %v, tracker = %v", resumed, tracker)
	}
	if tracker.Periods() != len(agent.Reports()) {
		t.Errorf("period clocks disagree: keyed %d, aggregate %d",
			tracker.Periods(), len(agent.Reports()))
	}
	st := tracker.Stats()
	if st.Tracked == 0 {
		t.Error("keyed half restored empty")
	}
	alarmed := 0
	for _, s := range tracker.Sources(0) {
		if s.Alarmed {
			alarmed++
		}
	}
	if alarmed == 0 {
		t.Error("slave stub's keyed alarms were not carried")
	}
	// The same file still resumes aggregate-only through the old
	// keyed-unaware reader (back-compat with pre-keyed snapshots).
	if _, resumed, err := daemon.LoadOrNewAgent(path, core.Config{T0: 10 * time.Second}); err != nil || !resumed {
		t.Errorf("aggregate-only read of keyed fleet snapshot: resumed=%v err=%v", resumed, err)
	}
}
