package main

import (
	"bytes"
	"testing"
	"time"
)

func TestFleetEndToEnd(t *testing.T) {
	// Small but complete fleet: the run fails with an error when any
	// stub's verdict disagrees with ground truth, so a nil error is
	// the assertion.
	err := run([]string{
		"-stubs", "4", "-flooders", "2", "-rate", "160",
		"-duration", "90s", "-onset", "30s", "-t0", "10s", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetNoFlooders(t *testing.T) {
	// All-clean fleet: nobody may alarm.
	err := run([]string{
		"-stubs", "3", "-flooders", "0", "-duration", "60s", "-onset", "20s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetValidation(t *testing.T) {
	if err := run([]string{"-stubs", "2", "-flooders", "5"}); err == nil {
		t.Error("flooders > stubs accepted")
	}
	if err := run([]string{"-stubs", "0"}); err == nil {
		t.Error("zero stubs accepted")
	}
	if err := run([]string{"-stubs", "1000"}); err == nil {
		t.Error("absurd stub count accepted")
	}
	if err := run([]string{"-trials", "0"}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestFleetParallelTrials(t *testing.T) {
	// Two independent campaigns fanned over two workers; each must
	// still agree with its own ground truth.
	err := run([]string{
		"-stubs", "3", "-flooders", "1", "-rate", "80",
		"-duration", "60s", "-onset", "20s", "-seed", "5",
		"-trials", "2", "-parallel", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFleetCampaignDeterministic(t *testing.T) {
	cfg := campaignConfig{
		stubs: 3, flooders: 1, totalRate: 80,
		duration: 60 * time.Second, onset: 20 * time.Second,
		t0: 10 * time.Second, benign: 40, seed: 7,
	}
	var a, b bytes.Buffer
	if err := runCampaign(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if err := runCampaign(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different reports:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
}
