// Command syndogfleet simulates the paper's full deployment story in
// one run: a DDoS campaign of total rate V split across A stub
// networks, a SYN-dog on every leaf router, a victim server with a
// finite backlog, and the per-stub alarms that locate the flooding
// sources.
//
// Usage:
//
//	syndogfleet -stubs 8 -flooders 3 -rate 240 -duration 3m
//
// The report shows, per stub, whether its SYN-dog alarmed (ground
// truth: does it host a slave?), the alarm latency, and the located
// station; plus the victim's backlog trajectory.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/flood"
	"repro/internal/mitigate"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/tcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "syndogfleet:", err)
		os.Exit(1)
	}
}

type stubReport struct {
	hasSlave bool
	agent    *core.Agent
	locator  *mitigate.Locator
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogfleet", flag.ContinueOnError)
	var (
		stubs     = fs.Int("stubs", 8, "number of stub networks")
		flooders  = fs.Int("flooders", 3, "stubs hosting a flooding slave")
		totalRate = fs.Float64("rate", 240, "aggregate flood rate V in SYN/s")
		duration  = fs.Duration("duration", 3*time.Minute, "flood duration")
		onset     = fs.Duration("onset", time.Minute, "flood onset")
		t0        = fs.Duration("t0", 10*time.Second, "observation period")
		benign    = fs.Float64("benign", 40, "legitimate connections/s per stub")
		seed      = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flooders > *stubs {
		return fmt.Errorf("flooders (%d) cannot exceed stubs (%d)", *flooders, *stubs)
	}
	if *stubs < 1 || *stubs > 200 {
		return fmt.Errorf("stubs must be in [1, 200]")
	}

	sim := eventsim.New()
	cloud := netsim.NewInternet(sim)
	rng := rand.New(rand.NewSource(*seed))

	// Victim with a realistic backlog.
	victimStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix: netip.MustParsePrefix("10.99.0.0/24"), Hosts: 1,
		HostDelay: time.Millisecond, UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	victim := victimStub.Hosts[0]
	server, err := tcp.NewServer(sim, victim.Addr, 80, victim.Send,
		tcp.ServerConfig{Backlog: 512})
	if err != nil {
		return err
	}
	victim.OnPacket = server.Deliver

	// A farm of always-responsive servers carries most benign load so
	// the victim's deafness cannot false-alarm innocent stubs.
	farmStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix: netip.MustParsePrefix("10.98.0.0/24"), Hosts: 12,
		HostDelay: time.Millisecond, UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	responders := make([]netip.Addr, 0, len(farmStub.Hosts))
	for _, h := range farmStub.Hosts {
		h := h
		h.OnPacket = func(_ time.Duration, s packet.Segment) {
			if s.Kind() == packet.KindSYN {
				h.Send(packet.Build(s.IP.Dst, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
					1, s.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
			}
		}
		responders = append(responders, h.Addr)
	}
	destinations := append([]netip.Addr{victim.Addr}, responders...)

	// Stubs, agents, slaves.
	perStub := *totalRate / float64(*flooders)
	master := flood.NewMaster()
	reports := make([]*stubReport, *stubs)
	for i := 0; i < *stubs; i++ {
		prefix := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", i+1))
		sn, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
			Prefix: prefix, Hosts: 2,
			HostDelay: time.Millisecond, UplinkDelay: 10 * time.Millisecond,
		}, nil)
		if err != nil {
			return err
		}
		sr := &stubReport{hasSlave: i < *flooders}
		reports[i] = sr
		if sr.agent, err = core.NewAgent(core.Config{T0: *t0}); err != nil {
			return err
		}
		if _, err = sr.agent.Install(sim, sn.Router); err != nil {
			return err
		}
		if sr.locator, err = mitigate.NewLocator(prefix); err != nil {
			return err
		}
		slaveHost := sn.Hosts[1]
		sn.Router.AddTap(func(now time.Duration, dir netsim.Direction, seg *packet.Segment) {
			if dir != netsim.Outbound {
				return
			}
			station := mitigate.StationFromAddr(seg.IP.Src)
			if !prefix.Contains(seg.IP.Src) {
				station = mitigate.StationFromAddr(slaveHost.Addr)
			}
			sr.locator.Observe(now, station, seg.IP.Src)
		})

		// Benign clients: bare SYN/ACK exchanges from host 0.
		legit := sn.Hosts[0]
		legit.OnPacket = func(_ time.Duration, s packet.Segment) {
			if s.Kind() == packet.KindSYNACK {
				legit.Send(packet.Build(s.IP.Dst, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
					s.TCP.Ack, s.TCP.Seq+1, packet.FlagACK))
			}
		}
		horizon := *onset + *duration + time.Minute
		gap := time.Duration(float64(time.Second) / *benign)
		for c := 0; c < int(horizon/gap); c++ {
			c := c
			dst := destinations[rng.Intn(len(destinations))]
			isn := rng.Uint32()
			sim.At(time.Duration(c)*gap, func(time.Duration) {
				legit.Send(packet.Build(legit.Addr, dst,
					uint16(10000+c%50000), 80, isn, 0, packet.FlagSYN))
			})
		}

		if sr.hasSlave {
			slave, err := flood.NewSlave(slaveHost, victim.Addr, 80,
				flood.Constant{PerSecond: perStub}, *seed+int64(i))
			if err != nil {
				return err
			}
			master.Enlist(slave)
		}
	}

	if master.Slaves() > 0 {
		if err := master.Launch(sim, *onset, *duration); err != nil {
			return err
		}
	}

	fmt.Printf("fleet: %d stubs (%d flooding), V=%.0f SYN/s (fi=%.1f each), onset %v, duration %v\n\n",
		*stubs, *flooders, *totalRate, perStub, *onset, *duration)
	sim.RunUntil(*onset + *duration + time.Minute)

	correct := 0
	onsetPeriod := int(*onset / *t0)
	for i, sr := range reports {
		role := "clean "
		if sr.hasSlave {
			role = "SLAVE "
		}
		verdict := "quiet"
		if al := sr.agent.FirstAlarm(); al != nil {
			verdict = fmt.Sprintf("ALARM at %v (+%d periods)", al.At, al.Period-onsetPeriod)
			if suspects := sr.locator.Suspects(); len(suspects) > 0 {
				verdict += fmt.Sprintf(", located %v", suspects[0].Station)
			}
		}
		ok := sr.agent.Alarmed() == sr.hasSlave
		if ok {
			correct++
		}
		marker := " "
		if !ok {
			marker = "!"
		}
		fmt.Printf("%s stub %2d [%s] %s\n", marker, i, role, verdict)
	}
	st := server.Stats()
	fmt.Printf("\nvictim: %d SYNs, %d dropped (backlog full), %d established\n",
		st.SynReceived, st.SynDropped, st.Established)
	fmt.Printf("fleet accuracy: %d/%d stubs judged correctly\n", correct, len(reports))
	if correct != len(reports) {
		return fmt.Errorf("fleet verdicts disagree with ground truth")
	}
	return nil
}
