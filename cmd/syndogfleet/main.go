// Command syndogfleet simulates the paper's full deployment story in
// one run: a DDoS campaign of total rate V split across A stub
// networks, a SYN-dog on every leaf router, a victim server with a
// finite backlog, and the per-stub alarms that locate the flooding
// sources.
//
// Usage:
//
//	syndogfleet -stubs 8 -flooders 3 -rate 240 -duration 3m
//	syndogfleet -trials 4 -parallel 4          # independent campaigns, fanned out
//
// The report shows, per stub, whether its SYN-dog alarmed (ground
// truth: does it host a slave?), the alarm latency, and the located
// station; plus the victim's backlog trajectory.
//
// -trials runs that many independent campaigns (trial i uses seed+i)
// through the experiment engine's worker pool; each trial renders into
// its own buffer and the reports print in trial order, so the output
// does not depend on -parallel.
//
// -snapshot-dir writes each stub agent's final state as a durable
// snapshot (stub00.json, stub01.json, …) via the daemon package's
// fsync-before-rename writer, keyed per-source state included; a
// snapshot can then be served or resumed by syndogd (-state
// stub03.json with matching -t0/-a/-N, plus -track-sources -key-bits 8
// -max-sources 64 to carry the keyed half). With -trials > 1 each
// trial writes into its own trialN/ subdirectory.
//
// -uplink turns every stub into a fusion monitor: each pipeline gains
// a summary tap (monitor "stubNN") whose per-period summaries —
// censored by -uplink-censor/-uplink-topk — stream to a syndogfusion
// coordinator over one shared batched uplink, so a dispersed flood too
// small for any single stub's detector can still be caught by the
// coordinator's rank fusion.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/eventsim"
	"repro/internal/experiment"
	"repro/internal/flood"
	"repro/internal/ingest"
	"repro/internal/mitigate"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
	"repro/internal/tcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "syndogfleet:", err)
		os.Exit(1)
	}
}

type stubReport struct {
	hasSlave bool
	agent    *core.Agent
	tracker  *sourcetrack.Tracker
	locator  *mitigate.Locator
}

// campaignConfig is one fully-parsed fleet campaign.
type campaignConfig struct {
	stubs, flooders int
	totalRate       float64
	duration, onset time.Duration
	t0              time.Duration
	benign          float64
	seed            int64
	snapshotDir     string
	uplink          string
	uplinkCfg       summary.Config
}

func run(args []string) error {
	fs := flag.NewFlagSet("syndogfleet", flag.ContinueOnError)
	var (
		stubs     = fs.Int("stubs", 8, "number of stub networks")
		flooders  = fs.Int("flooders", 3, "stubs hosting a flooding slave")
		totalRate = fs.Float64("rate", 240, "aggregate flood rate V in SYN/s")
		duration  = fs.Duration("duration", 3*time.Minute, "flood duration")
		onset     = fs.Duration("onset", time.Minute, "flood onset")
		t0        = fs.Duration("t0", 10*time.Second, "observation period")
		benign    = fs.Float64("benign", 40, "legitimate connections/s per stub")
		seed      = fs.Int64("seed", 1, "random seed")
		trials    = fs.Int("trials", 1, "independent campaigns to run (trial i uses seed+i)")
		parallel  = fs.Int("parallel", 0, "worker count for -trials > 1 (0 = one per CPU)")
		snapDir   = fs.String("snapshot-dir", "", "write each stub agent's final snapshot into this directory")
		uplink    = fs.String("uplink", "", "fusion coordinator base URL; every stub uplinks censored period summaries")
		upCensor  = fs.Float64("uplink-censor", 0, "censoring threshold λ for uplinked summaries (0 = no censoring)")
		upTopK    = fs.Int("uplink-topk", 0, "source digests per uplinked summary (0 = default 8, negative = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flooders > *stubs {
		return fmt.Errorf("flooders (%d) cannot exceed stubs (%d)", *flooders, *stubs)
	}
	if *stubs < 1 || *stubs > 200 {
		return fmt.Errorf("stubs must be in [1, 200]")
	}
	if *trials < 1 {
		return fmt.Errorf("trials must be positive")
	}
	if *uplink != "" && *trials > 1 {
		return fmt.Errorf("-uplink serves one campaign; parallel trials would interleave the same monitor names")
	}
	cfg := campaignConfig{
		stubs: *stubs, flooders: *flooders, totalRate: *totalRate,
		duration: *duration, onset: *onset, t0: *t0,
		benign: *benign, seed: *seed, snapshotDir: *snapDir,
		uplink: *uplink, uplinkCfg: summary.Config{Censor: *upCensor, TopK: *upTopK},
	}
	if *trials == 1 {
		return runCampaign(cfg, os.Stdout)
	}

	// Each trial is an independent simulation writing into its own
	// buffer; the pool may run them in any order but the reports print
	// in trial order, so output bytes are independent of -parallel.
	bufs := make([]bytes.Buffer, *trials)
	err := experiment.ForEach(*parallel, *trials, func(i int) error {
		c := cfg
		c.seed = cfg.seed + int64(i)
		if cfg.snapshotDir != "" {
			c.snapshotDir = filepath.Join(cfg.snapshotDir, fmt.Sprintf("trial%d", i))
		}
		fmt.Fprintf(&bufs[i], "=== trial %d (seed %d) ===\n", i, c.seed)
		return runCampaign(c, &bufs[i])
	})
	for i := range bufs {
		os.Stdout.Write(bufs[i].Bytes())
		fmt.Println()
	}
	return err
}

// runCampaign simulates one campaign and writes its report to w.
func runCampaign(cfg campaignConfig, w io.Writer) error {
	sim := eventsim.New()
	cloud := netsim.NewInternet(sim)
	rng := rand.New(rand.NewSource(cfg.seed))

	// Victim with a realistic backlog.
	victimStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix: netip.MustParsePrefix("10.99.0.0/24"), Hosts: 1,
		HostDelay: time.Millisecond, UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	victim := victimStub.Hosts[0]
	server, err := tcp.NewServer(sim, victim.Addr, 80, victim.Send,
		tcp.ServerConfig{Backlog: 512})
	if err != nil {
		return err
	}
	victim.OnPacket = server.Deliver

	// A farm of always-responsive servers carries most benign load so
	// the victim's deafness cannot false-alarm innocent stubs.
	farmStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix: netip.MustParsePrefix("10.98.0.0/24"), Hosts: 12,
		HostDelay: time.Millisecond, UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		return err
	}
	responders := make([]netip.Addr, 0, len(farmStub.Hosts))
	for _, h := range farmStub.Hosts {
		h := h
		h.OnPacket = func(_ time.Duration, s packet.Segment) {
			if s.Kind() == packet.KindSYN {
				h.Send(packet.Build(s.IP.Dst, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
					1, s.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
			}
		}
		responders = append(responders, h.Addr)
	}
	destinations := append([]netip.Addr{victim.Addr}, responders...)

	// Stubs, agents, slaves. Each leaf router taps into a live
	// ChanSource feeding an ingest pipeline in its own goroutine — the
	// same Source → Aggregate → Detect construction the offline tools
	// use, with the simulator as the packet source instead of a file.
	horizon := cfg.onset + cfg.duration + time.Minute
	perStub := cfg.totalRate / float64(cfg.flooders)

	// With -uplink the whole fleet shares one bounded uplink client:
	// each stub's pipeline gains a summary tap ("stubNN" as the monitor
	// name) feeding the fusion coordinator, and a slow coordinator sheds
	// summaries rather than stalling the simulation.
	var up *summary.Uplink
	if cfg.uplink != "" {
		var err error
		if up, err = summary.NewUplink(summary.UplinkConfig{
			URL: cfg.uplink, Summary: cfg.uplinkCfg,
		}); err != nil {
			return err
		}
	}
	master := flood.NewMaster()
	reports := make([]*stubReport, cfg.stubs)
	sources := make([]*ingest.ChanSource, cfg.stubs)
	feeders := make([]*sourcetrack.Feeder, cfg.stubs)
	pipeErrs := make([]error, cfg.stubs)
	var wg sync.WaitGroup
	for i := 0; i < cfg.stubs; i++ {
		prefix := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", i+1))
		sn, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
			Prefix: prefix, Hosts: 2,
			HostDelay: time.Millisecond, UplinkDelay: 10 * time.Millisecond,
		}, nil)
		if err != nil {
			return err
		}
		sr := &stubReport{hasSlave: i < cfg.flooders}
		reports[i] = sr
		if sr.agent, err = core.NewAgent(core.Config{T0: cfg.t0}); err != nil {
			return err
		}
		// Per-stub attribution: spoofed flood sources scatter across
		// 240.0.0.0/4, so /8 keying concentrates each slave's SYNs on
		// a handful of keys while the stub's own clients stay on
		// theirs. 64 states is plenty for 16 spoof /8s + the locals.
		if sr.tracker, err = sourcetrack.New(sourcetrack.Config{
			KeyBits:    8,
			MaxSources: 64,
			Shards:     1,
			Agent:      core.Config{T0: cfg.t0},
		}); err != nil {
			return err
		}
		live := ingest.NewChanSource(1024)
		sources[i] = live
		tap := live.Tap()
		sn.Router.AddTap(func(now time.Duration, dir netsim.Direction, seg *packet.Segment) {
			// The campaign window is [0, horizon): an event landing
			// exactly on the horizon belongs to no complete period.
			if now < horizon {
				tap(now, dir, seg)
			}
		})
		// The keyed bank rides behind a ring feeder: the pipeline
		// goroutine keys each record and hands shard work to the
		// feeder's worker, so attribution never stalls the live feed.
		// The feeder's period barrier keeps the reports bit-identical
		// to tapping the tracker directly.
		feeders[i] = sourcetrack.NewFeeder(sr.tracker)
		p := &ingest.Pipeline{
			Source:   live,
			Detector: ingest.WrapAgent(sr.agent),
			T0:       cfg.t0,
			Span:     horizon,
			Tap:      feeders[i],
		}
		if up != nil {
			st := summary.NewTap(&summary.Summarizer{
				Monitor: fmt.Sprintf("stub%02d", i),
				Cfg:     cfg.uplinkCfg,
				Tracker: sr.tracker,
			}, feeders[i], up.Send)
			p.Sink = st.Sink
			p.Tap = st
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pipeErrs[i] = p.Run()
		}(i)
		if sr.locator, err = mitigate.NewLocator(prefix); err != nil {
			return err
		}
		slaveHost := sn.Hosts[1]
		sn.Router.AddTap(func(now time.Duration, dir netsim.Direction, seg *packet.Segment) {
			if dir != netsim.Outbound {
				return
			}
			station := mitigate.StationFromAddr(seg.IP.Src)
			if !prefix.Contains(seg.IP.Src) {
				station = mitigate.StationFromAddr(slaveHost.Addr)
			}
			sr.locator.Observe(now, station, seg.IP.Src)
		})

		// Benign clients: bare SYN/ACK exchanges from host 0.
		legit := sn.Hosts[0]
		legit.OnPacket = func(_ time.Duration, s packet.Segment) {
			if s.Kind() == packet.KindSYNACK {
				legit.Send(packet.Build(s.IP.Dst, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
					s.TCP.Ack, s.TCP.Seq+1, packet.FlagACK))
			}
		}
		gap := time.Duration(float64(time.Second) / cfg.benign)
		for c := 0; c < int(horizon/gap); c++ {
			c := c
			dst := destinations[rng.Intn(len(destinations))]
			isn := rng.Uint32()
			sim.At(time.Duration(c)*gap, func(time.Duration) {
				legit.Send(packet.Build(legit.Addr, dst,
					uint16(10000+c%50000), 80, isn, 0, packet.FlagSYN))
			})
		}

		if sr.hasSlave {
			slave, err := flood.NewSlave(slaveHost, victim.Addr, 80,
				flood.Constant{PerSecond: perStub}, cfg.seed+int64(i))
			if err != nil {
				return err
			}
			master.Enlist(slave)
		}
	}

	if master.Slaves() > 0 {
		if err := master.Launch(sim, cfg.onset, cfg.duration); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "fleet: %d stubs (%d flooding), V=%.0f SYN/s (fi=%.1f each), onset %v, duration %v\n\n",
		cfg.stubs, cfg.flooders, cfg.totalRate, perStub, cfg.onset, cfg.duration)
	sim.RunUntil(horizon)

	// End of campaign: close every live stream and wait for the
	// pipelines to fold their trailing periods before reading verdicts.
	for _, src := range sources {
		src.CloseSend()
	}
	wg.Wait()
	for _, f := range feeders {
		f.Close()
	}
	if up != nil {
		// Flush the trailing summaries so the coordinator holds the
		// complete campaign before the report prints its counters.
		up.Close()
		fmt.Fprintf(w, "uplink: %d summaries sent, %d dropped, %d failed\n\n",
			up.Sent(), up.Dropped(), up.Failures())
	}
	for i, err := range pipeErrs {
		if err != nil {
			return fmt.Errorf("stub %d pipeline: %w", i, err)
		}
	}

	correct := 0
	onsetPeriod := int(cfg.onset / cfg.t0)
	for i, sr := range reports {
		role := "clean "
		if sr.hasSlave {
			role = "SLAVE "
		}
		verdict := "quiet"
		if al := sr.agent.FirstAlarm(); al != nil {
			verdict = fmt.Sprintf("ALARM at %v (+%d periods)", al.At, al.Period-onsetPeriod)
			if suspects := sr.locator.Suspects(); len(suspects) > 0 {
				verdict += fmt.Sprintf(", located %v", suspects[0].Station)
			}
			// Keyed attribution: the source prefix the flood evidence
			// concentrates on (spoofed blocks for a slave stub).
			srcs := sr.tracker.Sources(0)
			alarmedKeys := 0
			for _, s := range srcs {
				if s.Alarmed {
					alarmedKeys++
				}
			}
			if alarmedKeys > 0 {
				verdict += fmt.Sprintf(", sources %v", srcs[0].Key)
				if alarmedKeys > 1 {
					verdict += fmt.Sprintf(" (+%d more)", alarmedKeys-1)
				}
			}
		}
		ok := sr.agent.Alarmed() == sr.hasSlave
		if ok {
			correct++
		}
		marker := " "
		if !ok {
			marker = "!"
		}
		fmt.Fprintf(w, "%s stub %2d [%s] %s\n", marker, i, role, verdict)
	}
	// Persist the fleet's final agent states durably so any stub can
	// be inspected or resumed by syndogd after the campaign — written
	// even when a verdict disagrees, since a miss is exactly when the
	// operator wants the state on disk.
	if cfg.snapshotDir != "" {
		if err := os.MkdirAll(cfg.snapshotDir, 0o755); err != nil {
			return err
		}
		for i, sr := range reports {
			path := filepath.Join(cfg.snapshotDir, fmt.Sprintf("stub%02d.json", i))
			st := daemon.State{Snapshot: sr.agent.Snapshot()}
			if sr.tracker != nil {
				ks := sr.tracker.Snapshot()
				st.Sources = &ks
			}
			if err := daemon.WriteStateFile(st, path); err != nil {
				return fmt.Errorf("snapshot stub %d: %w", i, err)
			}
		}
		fmt.Fprintf(w, "\nsnapshots: %d stub agents written to %s\n", len(reports), cfg.snapshotDir)
	}

	st := server.Stats()
	fmt.Fprintf(w, "\nvictim: %d SYNs, %d dropped (backlog full), %d established\n",
		st.SynReceived, st.SynDropped, st.Established)
	// Backpressure loss across every stub's live ring: a verdict over a
	// lossy campaign is flagged, not silently trusted.
	var recordsDropped uint64
	for _, src := range sources {
		recordsDropped += src.Dropped()
	}
	fmt.Fprintf(w, "recordsDropped: %d\n", recordsDropped)
	fmt.Fprintf(w, "fleet accuracy: %d/%d stubs judged correctly\n", correct, len(reports))
	if correct != len(reports) {
		return fmt.Errorf("fleet verdicts disagree with ground truth")
	}
	return nil
}
