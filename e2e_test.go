package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipelineEndToEnd builds the actual shipped binaries and runs
// the workflow the README advertises: synthesize a background trace,
// mix in a flood, and run the detector over both — asserting the
// documented exit codes (0 = clean, 2 = flooding alarm).
func TestCLIPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"tracegen", "floodgen", "syndog"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}

	bg := filepath.Join(dir, "bg.trace")
	mixed := filepath.Join(dir, "mixed.trace")

	runCmd := func(wantExit int, bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[bin], args...)
		out, err := cmd.CombinedOutput()
		exit := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
			}
			exit = ee.ExitCode()
		}
		if exit != wantExit {
			t.Fatalf("%s %v: exit %d, want %d\n%s", bin, args, exit, wantExit, out)
		}
		return string(out)
	}

	runCmd(0, "tracegen", "-site", "auckland", "-span", "20m", "-seed", "4", "-o", bg)
	if fi, err := os.Stat(bg); err != nil || fi.Size() == 0 {
		t.Fatalf("tracegen produced no file: %v", err)
	}

	runCmd(0, "floodgen", "-in", bg, "-rate", "10", "-start", "8m", "-duration", "10m", "-o", mixed)

	clean := runCmd(0, "syndog", "-in", bg)
	if !strings.Contains(clean, "no flooding detected") {
		t.Errorf("clean run output: %q", clean)
	}

	alarmed := runCmd(2, "syndog", "-in", mixed, "-v")
	if !strings.Contains(alarmed, "FLOODING ALARM") {
		t.Errorf("flooded run output missing alarm: %q", alarmed)
	}
	// The verbose table must show the accumulation reaching past N.
	if !strings.Contains(alarmed, "*** ALARM ***") {
		t.Error("verbose period table missing alarm markers")
	}
}
