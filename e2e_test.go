package repro

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the named cmd/ binaries into dir and returns
// their paths.
func buildBinaries(t *testing.T, dir string, names ...string) map[string]string {
	t.Helper()
	bins := map[string]string{}
	for _, name := range names {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	return bins
}

// TestCLIPipelineEndToEnd builds the actual shipped binaries and runs
// the workflow the README advertises: synthesize a background trace,
// mix in a flood, and run the detector over both — asserting the
// documented exit codes (0 = clean, 2 = flooding alarm).
func TestCLIPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "tracegen", "floodgen", "syndog")

	bg := filepath.Join(dir, "bg.trace")
	mixed := filepath.Join(dir, "mixed.trace")

	runCmd := func(wantExit int, bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[bin], args...)
		out, err := cmd.CombinedOutput()
		exit := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
			}
			exit = ee.ExitCode()
		}
		if exit != wantExit {
			t.Fatalf("%s %v: exit %d, want %d\n%s", bin, args, exit, wantExit, out)
		}
		return string(out)
	}

	runCmd(0, "tracegen", "-site", "auckland", "-span", "20m", "-seed", "4", "-o", bg)
	if fi, err := os.Stat(bg); err != nil || fi.Size() == 0 {
		t.Fatalf("tracegen produced no file: %v", err)
	}

	runCmd(0, "floodgen", "-in", bg, "-rate", "10", "-start", "8m", "-duration", "10m", "-o", mixed)

	clean := runCmd(0, "syndog", "-in", bg)
	if !strings.Contains(clean, "no flooding detected") {
		t.Errorf("clean run output: %q", clean)
	}

	alarmed := runCmd(2, "syndog", "-in", mixed, "-v")
	if !strings.Contains(alarmed, "FLOODING ALARM") {
		t.Errorf("flooded run output missing alarm: %q", alarmed)
	}
	// The verbose table must show the accumulation reaching past N.
	if !strings.Contains(alarmed, "*** ALARM ***") {
		t.Error("verbose period table missing alarm markers")
	}
}

// TestDaemonEndToEnd runs syndogd against an accelerated flooded
// replay and watches the live endpoints: /metrics period counts must
// advance while the replay progresses, /reports must grow to match,
// and the alarm must be raised by the time the replay completes.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "tracegen", "floodgen", "syndogd")

	bg := filepath.Join(dir, "bg.trace")
	mixed := filepath.Join(dir, "mixed.trace")
	for _, args := range [][]string{
		{bins["tracegen"], "-site", "auckland", "-span", "10m", "-seed", "4", "-o", bg},
		{bins["floodgen"], "-in", bg, "-rate", "10", "-start", "2m", "-duration", "8m", "-o", mixed},
	} {
		if out, err := exec.Command(args[0], args[1:]...).CombinedOutput(); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}

	// -speed 1200 replays one 20 s observation period per ~17 ms wall
	// time, so the 10-minute trace drains in well under a second while
	// still going through the timed replay path the daemon uses live.
	cmd := exec.Command(bins["syndogd"], "-in", mixed, "-listen", "127.0.0.1:0", "-speed", "1200")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Signal(os.Interrupt)
		_, _ = cmd.Process.Wait()
	}()

	// The daemon announces its bound address on stderr.
	sc := bufio.NewScanner(stderr)
	if !sc.Scan() {
		t.Fatalf("no stderr banner: %v", sc.Err())
	}
	m := regexp.MustCompile(`http://([0-9.]+:[0-9]+)`).FindStringSubmatch(sc.Text())
	if m == nil {
		t.Fatalf("banner without address: %q", sc.Text())
	}
	base := "http://" + m[1]
	go io.Copy(io.Discard, stderr)

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metric := func(body, name string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok {
				f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					t.Fatalf("bad %s value %q", name, v)
				}
				return f
			}
		}
		t.Fatalf("metric %s missing from:\n%s", name, body)
		return 0
	}

	// Poll /metrics until the period counter has visibly advanced
	// mid-replay, then until the full 30 periods are in.
	deadline := time.Now().Add(15 * time.Second)
	first := -1.0
	var periods float64
	for {
		if time.Now().After(deadline) {
			t.Fatalf("period counter stuck at %v (started at %v)", periods, first)
		}
		periods = metric(get("/metrics"), "syndog_periods_total")
		if first < 0 && periods > 0 {
			first = periods
		}
		if first >= 0 && periods > first {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	for periods < 30 {
		if time.Now().After(deadline) {
			t.Fatalf("replay did not finish: %v periods", periods)
		}
		time.Sleep(20 * time.Millisecond)
		periods = metric(get("/metrics"), "syndog_periods_total")
	}

	// /reports must agree with the metrics counter once replay is done.
	var reports []json.RawMessage
	if err := json.Unmarshal([]byte(get("/reports")), &reports); err != nil {
		t.Fatalf("reports not JSON: %v", err)
	}
	if len(reports) < 30 {
		t.Errorf("reports = %d, want >= 30", len(reports))
	}

	// A 10 SYN/s flood at Auckland is far above the floor: the daemon
	// must have alarmed by end of replay.
	if alarmed := metric(get("/metrics"), "syndog_alarmed"); alarmed != 1 {
		t.Errorf("syndog_alarmed = %v, want 1", alarmed)
	}
	if status := get("/status"); !strings.Contains(status, `"alarmed":true`) {
		t.Errorf("status lacks alarm: %s", status)
	}
}

// TestDaemonResumeEndToEnd exercises the shipped binary's resume path:
// run syndogd with -state and -checkpoint, SIGTERM it mid-replay,
// restart it from the snapshot, and require the final /reports payload
// to be byte-identical to an uninterrupted run over the same trace.
func TestDaemonResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "tracegen", "floodgen", "syndogd")

	bg := filepath.Join(dir, "bg.trace")
	mixed := filepath.Join(dir, "mixed.trace")
	for _, args := range [][]string{
		{bins["tracegen"], "-site", "auckland", "-span", "10m", "-seed", "4", "-o", bg},
		{bins["floodgen"], "-in", bg, "-rate", "10", "-start", "2m", "-duration", "8m", "-o", mixed},
	} {
		if out, err := exec.Command(args[0], args[1:]...).CombinedOutput(); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}

	// startDaemon launches syndogd, waits for the serving banner, and
	// returns the base URL, the accumulated stderr, and the command.
	startDaemon := func(args ...string) (string, *strings.Builder, *exec.Cmd) {
		t.Helper()
		cmd := exec.Command(bins["syndogd"], args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		banner := regexp.MustCompile(`http://([0-9.]+:[0-9]+)`)
		sc := bufio.NewScanner(stderr)
		var log strings.Builder
		for sc.Scan() {
			log.WriteString(sc.Text() + "\n")
			if m := banner.FindStringSubmatch(sc.Text()); m != nil {
				go func() {
					for sc.Scan() {
						log.WriteString(sc.Text() + "\n")
					}
				}()
				return "http://" + m[1], &log, cmd
			}
		}
		t.Fatalf("no serving banner; stderr so far:\n%s", log.String())
		return "", nil, nil
	}

	get := func(base, path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	type status struct {
		Periods      int  `json:"periods"`
		ReplayDone   bool `json:"replayDone"`
		ResumeOffset int  `json:"resumeOffset"`
	}
	waitStatus := func(base string, ok func(status) bool) status {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			var s status
			if err := json.Unmarshal([]byte(get(base, "/status")), &s); err != nil {
				t.Fatal(err)
			}
			if ok(s) {
				return s
			}
			if time.Now().After(deadline) {
				t.Fatalf("status never converged: %+v", s)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	stop := func(cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
		}
	}

	// Reference: one uninterrupted instant replay.
	base, _, ref := startDaemon("-in", mixed, "-listen", "127.0.0.1:0")
	waitStatus(base, func(s status) bool { return s.ReplayDone })
	wantReports := get(base, "/reports")
	stop(ref)

	// First boot: paced replay with checkpointing, killed mid-replay.
	state := filepath.Join(dir, "agent.json")
	base, _, first := startDaemon("-in", mixed, "-listen", "127.0.0.1:0",
		"-speed", "200", "-state", state, "-checkpoint", "50ms")
	mid := waitStatus(base, func(s status) bool { return s.Periods >= 5 })
	stop(first)
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("no snapshot after shutdown: %v", err)
	}

	// Second boot: resume the snapshot and finish instantly.
	base, log, second := startDaemon("-in", mixed, "-listen", "127.0.0.1:0",
		"-speed", "0", "-state", state)
	fin := waitStatus(base, func(s status) bool { return s.ReplayDone })
	if fin.ResumeOffset < 5 {
		t.Errorf("resume offset = %d, want >= 5 (killed at %d periods)", fin.ResumeOffset, mid.Periods)
	}
	if !strings.Contains(log.String(), "resumed from") {
		t.Errorf("no resume notice in stderr:\n%s", log.String())
	}
	if !strings.Contains(get(base, "/metrics"), "syndog_records_skipped_total") {
		t.Error("metrics missing skip counter")
	}
	gotReports := get(base, "/reports")
	stop(second)

	if gotReports != wantReports {
		t.Error("resumed daemon's /reports differ from uninterrupted run")
	}
}
